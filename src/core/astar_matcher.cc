#include "core/astar_matcher.h"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "core/match_telemetry.h"
#include "core/search_common.h"
#include "exec/budget.h"
#include "obs/stopwatch.h"

namespace hematch {

namespace {

struct Node {
  Mapping mapping;
  double g = 0.0;
  double h = 0.0;
  std::uint64_t sequence = 0;  // Creation order; final fallback tie key.
  std::uint64_t signature = 0;  // Dominance signature (reductions only).

  double f() const { return g + h; }
};

// Max-heap on f; ties prefer deeper (closer-to-complete) nodes, then the
// lexicographically smallest mapping — a stable key independent of node
// creation history, so reruns (and the parallel matcher at any thread
// count) certify the same canonical optimum. Creation order is only the
// final fallback for identical mappings.
struct NodeLess {
  bool operator()(const Node& a, const Node& b) const {
    if (a.f() != b.f()) return a.f() < b.f();
    if (a.mapping.size() != b.mapping.size()) {
      return a.mapping.size() < b.mapping.size();
    }
    const int lex = Mapping::LexCompare(a.mapping, b.mapping);
    if (lex != 0) return lex > 0;
    return a.sequence > b.sequence;
  }
};

}  // namespace

AStarMatcher::AStarMatcher(AStarOptions options)
    : options_(std::move(options)) {}

std::string AStarMatcher::name() const {
  if (!options_.name_override.empty()) {
    return options_.name_override;
  }
  switch (options_.scorer.bound) {
    case BoundKind::kSimple:
      return "Pattern-Simple";
    case BoundKind::kTight:
      return "Pattern-Tight";
    case BoundKind::kBitmapTight:
      return "Pattern-Bitmap";
  }
  return "Pattern-Tight";
}

Result<MatchResult> AStarMatcher::Match(MatchingContext& context) const {
  const obs::Stopwatch watch;
  const std::size_t n1 = context.num_sources();
  const std::size_t n2 = context.num_targets();
  const bool partial = options_.scorer.partial.enabled();
  const double unmapped_penalty = options_.scorer.partial.unmapped_penalty;
  if (n1 > n2 && !partial) {
    return Status::InvalidArgument(
        "A* matcher requires |V1| <= |V2|; swap the logs or enable "
        "partial mappings");
  }
  // Number of decided sources (mapped or ⊥) — the search depth. Equal
  // to mapping.size() whenever partial mappings are off.
  auto decided = [](const Mapping& m) {
    return m.size() + m.num_null_sources();
  };

  MappingScorer scorer(context, options_.scorer);
  exec::ExecutionGovernor& governor = context.governor();
  const std::string method = name();
  const std::string slug = obs::MetricSlug(method);
  obs::MetricsRegistry& metrics = context.metrics();
  SearchTelemetry telem = SearchTelemetry::Register(metrics, slug);

  obs::SearchTracer* tracer = context.tracer();
  obs::TraceRecorder* recorder = context.trace_recorder();
  obs::ScopedSpan match_span(recorder, "match." + slug, "core");
  const std::uint64_t interval =
      options_.progress_interval == 0 ? 8192 : options_.progress_interval;
  std::uint64_t next_report = interval;
  const std::uint64_t prune_hits_at_start = context.existence_prune_hits();

  // Approximate resident size of one open-list node: the struct, the
  // mapping's two id vectors, and container slack.
  const std::size_t node_bytes =
      sizeof(Node) + (n1 + n2) * sizeof(EventId) + 32;

  const SearchPlan plan = BuildSearchPlan(context);
  const bool use_dominance = options_.reductions.dominance_pruning;
  const bool use_symmetry = options_.reductions.symmetry_breaking;
  DominanceTable dominance;
  TargetSymmetry symmetry;
  if (use_symmetry) {
    symmetry = ComputeTargetSymmetry(context.log2());
  }

  MatchResult result;
  std::uint64_t sequence = 0;
  std::uint64_t epoch = 0;
  double best_g_seen = 0.0;

  // Fills a progress sample from the search's current frontier node.
  auto sample = [&](const Node& node, std::size_t open_size) {
    obs::SearchProgress p;
    p.method = method;
    p.epoch = epoch;
    p.nodes_visited = result.nodes_visited;
    p.mappings_processed = result.mappings_processed;
    p.open_list_size = open_size;
    p.depth = decided(node.mapping);
    p.max_depth = n1;
    p.best_f = node.f();
    p.best_g = best_g_seen;
    p.bound_gap = node.f() - best_g_seen;
    p.existence_prune_hits =
        context.existence_prune_hits() - prune_hits_at_start;
    p.elapsed_ms = watch.ElapsedMs();
    return p;
  };

  // Epoch counter samples for the timeline (the span-trace analogue of
  // the SearchTracer progress stream): frontier shape, incumbent gap,
  // pruning, and memo behavior, sampled every `interval` node pops.
  auto trace_epoch_counters = [&](const Node& node, std::size_t open_size) {
    if (recorder == nullptr) return;
    recorder->RecordCounter(slug + ".open_list",
                            static_cast<double>(open_size));
    recorder->RecordCounter(slug + ".best_f", node.f());
    recorder->RecordCounter(slug + ".bound_gap", node.f() - best_g_seen);
    recorder->RecordCounter(
        slug + ".prune.existence",
        static_cast<double>(context.existence_prune_hits() -
                            prune_hits_at_start));
    const FrequencyEvaluator::Stats& fs = context.evaluator2_stats();
    recorder->RecordCounter("freq2.cache_hits",
                            static_cast<double>(fs.cache_hits.load(
                                std::memory_order_relaxed)));
    recorder->RecordCounter("freq2.cache_misses",
                            static_cast<double>(fs.cache_misses.load(
                                std::memory_order_relaxed)));
  };

  // Run summary attached to the match span at every exit.
  auto finalize_attribution = [&] {
    telem.prune_existence->Increment(context.existence_prune_hits() -
                                     prune_hits_at_start);
    match_span.AddArg("nodes_visited",
                      static_cast<double>(result.nodes_visited));
    match_span.AddArg("mappings_processed",
                      static_cast<double>(result.mappings_processed));
    match_span.AddArg("objective", result.objective);
    match_span.AddArg("bound_gap", result.upper_bound - result.lower_bound);
  };

  auto trace_completion = [&](std::size_t open_size) {
    finalize_attribution();
    if (tracer == nullptr) return;
    obs::SearchProgress done;
    done.method = method;
    done.epoch = epoch;
    done.nodes_visited = result.nodes_visited;
    done.mappings_processed = result.mappings_processed;
    done.open_list_size = open_size;
    done.depth = result.mapping.size();
    done.max_depth = n1;
    done.best_f = result.upper_bound;
    done.best_g = result.objective;
    done.bound_gap = result.upper_bound - result.lower_bound;
    done.existence_prune_hits =
        context.existence_prune_hits() - prune_hits_at_start;
    done.elapsed_ms = result.elapsed_ms;
    tracer->OnComplete(done);
  };

  std::priority_queue<Node, std::vector<Node>, NodeLess> queue;

  // Anytime return path: the budget tripped, so greedily complete the
  // best node in hand and certify bounds around the true optimum.  The
  // returned objective is the mapping's exact score (a valid lower
  // bound); the largest f still on the frontier is a valid upper bound
  // because h never underestimates.
  auto anytime_result = [&](Node node, std::size_t open_size,
                            exec::TerminationReason reason) {
    double upper = node.f();
    if (!queue.empty()) upper = std::max(upper, queue.top().f());
    Mapping m = std::move(node.mapping);
    const double deadline = governor.budget().deadline_ms;
    const double grace_ms = deadline > 0.0 ? deadline * 1.5 + 25.0 : -1.0;
    const double g = GreedyComplete(scorer, plan, m, node.g, watch, grace_ms,
                                    result.mappings_processed);
    result.mapping = std::move(m);
    result.objective = g;
    result.termination = reason;
    result.lower_bound = g;
    result.upper_bound = std::max(upper, g);
    // A cancelled run may have aborted frequency scans mid-stream, so
    // its numbers are best-effort only.
    result.bounds_certified = reason != exec::TerminationReason::kCancelled;
    telem.best_f->Set(result.objective);
    telem.bound_gap->Set(result.upper_bound - result.lower_bound);
    telem.RecordOpenPeak(open_size);
    FinalizePartialMapping(context, method, options_.scorer.partial, result);
    FinalizeMatchTelemetry(context, method, watch, result);
    trace_completion(open_size);
    return result;
  };

  Node root{Mapping(n1, n2), 0.0, 0.0, sequence++, 0};
  root.h = scorer.ComputeHForRemaining(root.mapping, plan.remaining_after[0]);
  governor.ChargeMemory(node_bytes);
  queue.push(std::move(root));

  while (!queue.empty()) {
    Node node = queue.top();
    queue.pop();
    governor.ReleaseMemory(node_bytes);
    ++result.nodes_visited;
    best_g_seen = std::max(best_g_seen, node.g);
    telem.expansion_depth->Observe(static_cast<double>(decided(node.mapping)));
    telem.bound_gap_trajectory->Observe(node.f() - best_g_seen);
    if ((tracer != nullptr || recorder != nullptr) &&
        result.nodes_visited >= next_report) {
      if (tracer != nullptr) {
        tracer->OnProgress(sample(node, queue.size() + 1));
      }
      trace_epoch_counters(node, queue.size() + 1);
      ++epoch;
      next_report += interval;
    }
    const std::size_t depth = decided(node.mapping);
    if (depth == n1) {
      // First complete pop: optimal, since h is an upper bound.
      result.mapping = std::move(node.mapping);
      result.objective = node.g;
      result.lower_bound = node.g;
      result.upper_bound = node.g;
      result.bounds_certified = true;
      telem.best_f->Set(node.g);
      telem.bound_gap->Set(0.0);
      telem.RecordOpenPeak(queue.size());
      FinalizePartialMapping(context, method, options_.scorer.partial, result);
      FinalizeMatchTelemetry(context, method, watch, result);
      trace_completion(queue.size());
      return result;
    }
    // Stale representative: a strictly better same-signature node was
    // admitted after this one was pushed; its subtree covers this one.
    if (use_dominance && depth > 0 &&
        dominance.IsStale(node.signature, node.g)) {
      telem.prune_dominance->Increment();
      continue;
    }
    if (!governor.Poll()) {
      return anytime_result(std::move(node), queue.size() + 1,
                            governor.reason());
    }
    telem.best_f->Set(node.f());
    telem.bound_gap->Set(node.f() - best_g_seen);

    const EventId source = plan.order[depth];
    std::uint64_t children_pushed = 0;
    for (EventId target = 0; target < n2; ++target) {
      if (node.mapping.IsTargetUsed(target)) {
        continue;
      }
      if (use_symmetry && symmetry.Skips(node.mapping, target)) {
        // A smaller-id interchangeable target is still unused; the
        // canonical subtree assigns that one instead.
        telem.prune_symmetry->Increment();
        continue;
      }
      if (result.mappings_processed >= options_.max_expansions) {
        return anytime_result(std::move(node), queue.size() + 1,
                              exec::TerminationReason::kExpansionCap);
      }
      if (!governor.CheckExpansions(1)) {
        return anytime_result(std::move(node), queue.size() + 1,
                              governor.reason());
      }
      ++result.mappings_processed;

      Node child{node.mapping, node.g, 0.0, sequence++, 0};
      child.mapping.Set(source, target);
      for (std::uint32_t pid : plan.completed_at[depth + 1]) {
        child.g += scorer.CompletedOrDeadContribution(pid, child.mapping);
      }
      if (use_dominance) {
        child.signature =
            DominanceSignature(plan, depth + 1, child.mapping);
        if (dominance.IsDominated(child.signature, child.g)) {
          telem.prune_dominance->Increment();
          continue;  // An equal-future node with >= g was already kept.
        }
        governor.ChargeMemory(DominanceTable::kBytesPerEntry);
      }
      child.h = scorer.ComputeHForRemaining(child.mapping,
                                            plan.remaining_after[depth + 1]);
      governor.ChargeMemory(node_bytes);
      queue.push(std::move(child));
      ++children_pushed;
    }
    if (partial) {
      // The "unmap v1" branch: map `source` to ⊥. Every pattern that
      // completes at this depth contains `source` and dies, so the
      // incremental g is exactly -penalty; remaining dead patterns get
      // Δ = 0 inside ComputeHForRemaining, keeping h admissible.
      if (result.mappings_processed >= options_.max_expansions) {
        return anytime_result(std::move(node), queue.size() + 1,
                              exec::TerminationReason::kExpansionCap);
      }
      if (!governor.CheckExpansions(1)) {
        return anytime_result(std::move(node), queue.size() + 1,
                              governor.reason());
      }
      ++result.mappings_processed;

      Node child{node.mapping, node.g - unmapped_penalty, 0.0, sequence++, 0};
      child.mapping.SetUnmapped(source);
      bool keep = true;
      if (use_dominance) {
        child.signature =
            DominanceSignature(plan, depth + 1, child.mapping);
        if (dominance.IsDominated(child.signature, child.g)) {
          telem.prune_dominance->Increment();
          keep = false;
        } else {
          governor.ChargeMemory(DominanceTable::kBytesPerEntry);
        }
      }
      if (keep) {
        child.h = scorer.ComputeHForRemaining(
            child.mapping, plan.remaining_after[depth + 1]);
        governor.ChargeMemory(node_bytes);
        queue.push(std::move(child));
        ++children_pushed;
      }
    }
    telem.branching_factor->Observe(static_cast<double>(children_pushed));
    telem.RecordOpenPeak(queue.size());
  }
  return Status::Internal("A* queue exhausted without a complete mapping");
}

}  // namespace hematch
