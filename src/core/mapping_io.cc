#include "core/mapping_io.h"

#include <istream>
#include <ostream>
#include <string>

#include "common/strings.h"

namespace hematch {

Status WriteMapping(const Mapping& mapping, const EventDictionary& source,
                    const EventDictionary& target, std::ostream& output) {
  output << "# hematch mapping: " << mapping.size() << " pairs\n";
  for (EventId v = 0; v < mapping.num_sources(); ++v) {
    const EventId t = mapping.TargetOf(v);
    if (t == kInvalidEventId) {
      continue;
    }
    if (v >= source.size() || t >= target.size()) {
      return Status::InvalidArgument(
          "mapping references events outside the dictionaries");
    }
    output << source.Name(v) << '\t' << target.Name(t) << '\n';
  }
  if (!output) {
    return Status::Internal("I/O failure while writing mapping");
  }
  return Status::OK();
}

Result<Mapping> ReadMapping(std::istream& input,
                            const EventDictionary& source,
                            const EventDictionary& target) {
  Mapping mapping(source.size(), target.size());
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(input, line)) {
    ++line_no;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') {
      continue;
    }
    const std::size_t tab = stripped.find('\t');
    if (tab == std::string_view::npos) {
      return Status::ParseError("mapping line " + std::to_string(line_no) +
                                " has no tab separator: " + line);
    }
    const std::string_view source_name =
        StripWhitespace(stripped.substr(0, tab));
    const std::string_view target_name =
        StripWhitespace(stripped.substr(tab + 1));
    Result<EventId> v = source.Lookup(source_name);
    if (!v.ok()) {
      return Status::ParseError("mapping line " + std::to_string(line_no) +
                                ": unknown source event '" +
                                std::string(source_name) + "'");
    }
    Result<EventId> t = target.Lookup(target_name);
    if (!t.ok()) {
      return Status::ParseError("mapping line " + std::to_string(line_no) +
                                ": unknown target event '" +
                                std::string(target_name) + "'");
    }
    if (mapping.IsSourceMapped(v.value())) {
      return Status::ParseError("mapping line " + std::to_string(line_no) +
                                ": source '" + std::string(source_name) +
                                "' mapped twice");
    }
    if (mapping.IsTargetUsed(t.value())) {
      return Status::ParseError("mapping line " + std::to_string(line_no) +
                                ": target '" + std::string(target_name) +
                                "' used twice (mapping must be injective)");
    }
    mapping.Set(v.value(), t.value());
  }
  if (input.bad()) {
    return Status::ParseError("I/O failure while reading mapping");
  }
  return mapping;
}

}  // namespace hematch
