#ifndef HEMATCH_CORE_SEARCH_COMMON_H_
#define HEMATCH_CORE_SEARCH_COMMON_H_

/// \file
/// Machinery shared by the sequential exact A* (core/astar_matcher.cc)
/// and the parallel HDA*-style matcher (exec/parallel_astar.cc):
///
///  * `SearchPlan` — the fixed expansion schedule (source order,
///    per-depth completed/remaining pattern tables) both searches
///    precompute once per run.
///  * Dominance signatures — a 64-bit key identifying partial mappings
///    with identical futures, so only the best-g representative of each
///    signature class needs expanding. The same key hashes nodes to
///    HDA* worker-owned open lists, which is what makes the parallel
///    matcher's dominance tables worker-local and lock-free.
///  * Target symmetry classes — groups of interchangeable target events
///    (label swaps that are automorphisms of log2's trace multiset);
///    expansion only tries the lowest-id unused member of each class.
///  * `SearchTelemetry` — the per-method metric bundle (open-list peak,
///    bound gauges, pruning counters) registered identically by both
///    matchers so their telemetry has the same shape.
///  * `GreedyComplete` — the anytime completion both matchers run when
///    a budget trips.
///
/// Exactness notes (why the reductions never change the certified
/// optimum) are on the individual declarations.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/mapping.h"
#include "core/mapping_scorer.h"
#include "core/matching_context.h"
#include "log/event_log.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"

namespace hematch {

/// Toggles for the exactness-preserving search-space reductions shared
/// by the sequential and parallel exact matchers (see the declarations
/// below for why each one never changes the certified optimum). Off by
/// default for the sequential matcher — the parallel matcher enables
/// both in its own defaults.
struct SearchReductions {
  /// Keep only the best-g representative per dominance signature.
  bool dominance_pruning = false;
  /// Canonical assignment order over interchangeable target classes.
  bool symmetry_breaking = false;
};

/// The fixed expansion schedule of Algorithm 1, precomputed once per
/// run: sources are decided in decreasing number-of-involving-patterns
/// order, which makes the set of patterns completing at each depth
/// static.
struct SearchPlan {
  std::size_t num_sources = 0;
  std::size_t num_targets = 0;
  /// order[d]: the source decided at depth d.
  std::vector<EventId> order;
  /// position[v]: the depth at which source v is decided.
  std::vector<std::size_t> position;
  /// completed_at[d]: patterns whose last event (in expansion order) is
  /// decided at depth d — they move from h to g there.
  std::vector<std::vector<std::uint32_t>> completed_at;
  /// remaining_after[d]: patterns still incomplete after depth d.
  std::vector<std::vector<std::uint32_t>> remaining_after;
  /// signature_sources[d]: the decided sources (subset of order[0..d))
  /// that appear in at least one pattern of remaining_after[d] —
  /// exactly the assignments a node's future gains still depend on.
  /// Ascending by id.
  std::vector<std::vector<EventId>> signature_sources;
};

/// Builds the plan for `context` (deterministic for a given context).
SearchPlan BuildSearchPlan(const MatchingContext& context);

/// Dominance signature of a partial mapping at `depth` (its decided
/// set is exactly plan.order[0..depth)). Two nodes with equal
/// signatures have identical futures: the same targets remain
/// available, and every pattern still incomplete reads only sources
/// whose assignments the signature fixes — so their reachable
/// completions score identically except for the g already banked.
/// Keeping only the best-g representative is therefore exact.
///
/// The signature hashes (a) the depth, (b) the *set* of used targets
/// (order-independently, so nodes that assigned future-irrelevant
/// sources differently still collide — that is the pruning win), and
/// (c) the exact assignment (target or ⊥) of each future-relevant
/// source. 64-bit splitmix64 mixing, same collision argument as
/// freq/pattern_key.h: ~2^-64 per pair, far below 10^-6 for any real
/// frontier.
std::uint64_t DominanceSignature(const SearchPlan& plan, std::size_t depth,
                                 const Mapping& mapping);

/// Best-g-per-signature table. Worker-local in the parallel matcher
/// (signatures are routed to their owning worker), run-local in the
/// sequential one.
class DominanceTable {
 public:
  /// True when a node with signature `sig` and value `g` is dominated
  /// (a representative with at least `g` was already admitted) — the
  /// caller prunes it. Otherwise records `g` as the class best and
  /// returns false. Ties prune: an equal-g representative already
  /// covers every completion.
  bool IsDominated(std::uint64_t sig, double g) {
    auto [it, inserted] = best_.try_emplace(sig, g);
    if (inserted) {
      return false;
    }
    if (g <= it->second) {
      return true;
    }
    it->second = g;
    return false;
  }

  /// True when `g` is strictly below the admitted best for `sig` — the
  /// pop-time staleness check (a strictly better same-future node was
  /// admitted after this one was pushed).
  bool IsStale(std::uint64_t sig, double g) const {
    const auto it = best_.find(sig);
    return it != best_.end() && g < it->second;
  }

  std::size_t size() const { return best_.size(); }

  /// Approximate resident bytes per entry (key + value + bucket slack),
  /// for governor memory accounting.
  static constexpr std::size_t kBytesPerEntry = 48;

 private:
  std::unordered_map<std::uint64_t, double> best_;
};

/// Target events whose pairwise label swaps are automorphisms of
/// log2's trace multiset, grouped into equivalence classes. Swapping
/// two same-class targets in any complete mapping yields a mapping
/// with an identical objective (every f2 is invariant under the swap),
/// so expansion may canonically try only the lowest-id unused member
/// of each class — symmetric siblings are exact duplicates.
struct TargetSymmetry {
  /// class_of[t]: class id of target t (classes are singletons for
  /// asymmetric targets).
  std::vector<std::uint32_t> class_of;
  /// members[c]: targets of class c, ascending. Size 1 for singletons.
  std::vector<std::vector<EventId>> members;
  /// Number of targets sharing a class with at least one other target.
  std::size_t interchangeable_targets = 0;

  bool any() const { return interchangeable_targets > 0; }

  /// True when `target` must be skipped at expansion: an unused
  /// smaller-id member of its class exists, and the canonical order
  /// assigns that one first.
  bool Skips(const Mapping& m, EventId target) const {
    if (!any()) {
      return false;
    }
    for (EventId t : members[class_of[target]]) {
      if (t >= target) {
        return false;
      }
      if (!m.IsTargetUsed(t)) {
        return true;
      }
    }
    return false;
  }
};

/// Computes the exact symmetry classes of `log2`: candidate classes are
/// grouped by per-event structural fingerprints, then each candidate is
/// verified against its class representative by rehashing the whole
/// trace multiset under the label swap. Pairwise verification against
/// one representative suffices — swap automorphisms conjugate:
/// (t1 t2) = (r t1)(r t2)(r t1).
TargetSymmetry ComputeTargetSymmetry(const EventLog& log2);

/// The per-method search metrics both exact matchers register, so the
/// sequential and parallel runs export the same telemetry shape under
/// their respective slugs.
struct SearchTelemetry {
  obs::Gauge* open_list_peak = nullptr;
  obs::Gauge* best_f = nullptr;
  obs::Gauge* bound_gap = nullptr;
  obs::Histogram* expansion_depth = nullptr;
  obs::Histogram* branching_factor = nullptr;
  obs::Histogram* bound_gap_trajectory = nullptr;
  obs::Counter* prune_existence = nullptr;
  obs::Counter* prune_bound = nullptr;
  obs::Counter* prune_dominance = nullptr;
  obs::Counter* prune_symmetry = nullptr;

  static SearchTelemetry Register(obs::MetricsRegistry& metrics,
                                  const std::string& slug);

  /// The one place the open-list high-water gauge is updated (satellite
  /// of PR 9: this was previously three separate call sites).
  void RecordOpenPeak(std::size_t open_size) {
    open_list_peak->SetMax(static_cast<double>(open_size));
  }
};

/// Greedy anytime completion (the budget-tripped exit path): decides
/// every remaining source of `m` by best incremental contribution,
/// degrading to first-fit + exact rescore when `grace_ms` (measured on
/// `watch`) is exceeded. Returns the exact objective of the completed
/// mapping; `mappings_processed` is incremented per candidate tried.
/// `g` must be the exact banked objective of `m`.
double GreedyComplete(MappingScorer& scorer, const SearchPlan& plan,
                      Mapping& m, double g, const obs::Stopwatch& watch,
                      double grace_ms, std::uint64_t& mappings_processed);

}  // namespace hematch

#endif  // HEMATCH_CORE_SEARCH_COMMON_H_
