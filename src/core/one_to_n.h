#ifndef HEMATCH_CORE_ONE_TO_N_H_
#define HEMATCH_CORE_ONE_TO_N_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/mapping.h"
#include "core/mapping_scorer.h"
#include "exec/budget.h"
#include "log/event_log.h"
#include "pattern/pattern.h"

namespace hematch {

/// Options for the 1-to-n extension.
struct OneToNOptions {
  ScorerOptions scorer;
  /// A merge must improve the pattern normal distance by at least this
  /// much to be accepted.
  double min_gain = 1e-9;
  /// Upper bound on accepted merges (default: until no merge helps).
  std::size_t max_merges = ~std::size_t{0};
  /// Optional budget enforcement: each candidate merge scoring charges
  /// one expansion. On exhaustion the extension stops early and returns
  /// the groups accepted so far (`GroupMapping::termination` names the
  /// tripped limit). Borrowed; must outlive the call.
  exec::ExecutionGovernor* governor = nullptr;
};

/// The result of extending a 1-1 mapping to 1-to-n groups.
struct GroupMapping {
  /// `groups[v1]` = the target events corresponding to source `v1`
  /// (singleton for un-extended pairs). Indexed by source id.
  std::vector<std::vector<EventId>> groups;
  /// The target log after merging each accepted group into its
  /// representative event (adjacent duplicates collapsed).
  EventLog merged_log2;
  /// Pattern normal distance of the base mapping measured against
  /// `merged_log2`.
  double objective = 0.0;
  /// Objective before any merge (for reporting the gain).
  double base_objective = 0.0;
  /// Number of accepted merges.
  std::size_t merges = 0;
  /// kCompleted when the greedy loop converged; otherwise the budget
  /// limit that cut it short (the groups so far are still returned).
  exec::TerminationReason termination = exec::TerminationReason::kCompleted;
};

/// Extends a complete 1-1 mapping to 1-to-n matching — the direction the
/// paper names as future work ("an event is mapped to multiple events").
///
/// Model: the target system splits some source steps into several events
/// (e.g. L1's `ship` is L2's `pack` + `dispatch`). Merging a split
/// group back into one event should make the two logs correspond 1-1,
/// *raising* the pattern normal distance; attaching an unrelated event
/// lowers it. The algorithm exploits exactly that:
///
///   repeat
///     for every currently unmatched target u and every pair v1 -> t:
///       build L2' where u is renamed to t (adjacent duplicates
///       collapsed — a split step logs several consecutive records);
///       score = D^N of the base mapping against L2'
///     accept the merge with the largest score if it gains >= min_gain
///   until no merge gains
///
/// Greedy and quadratic per round, which is fine at schema scale
/// (tens of events). Requires `base` complete on `log1`'s events.
/// The returned groups always cover each source's original target.
Result<GroupMapping> ExtendToOneToN(const EventLog& log1,
                                    const EventLog& log2,
                                    const std::vector<Pattern>& patterns,
                                    const Mapping& base,
                                    const OneToNOptions& options = {});

/// Renders groups as "ship -> {pack, dispatch}, ..." using the logs'
/// dictionaries (only non-singleton groups unless `include_singletons`).
std::string GroupsToString(const GroupMapping& result, const EventLog& log1,
                           const EventLog& log2,
                           bool include_singletons = false);

/// Note on the symmetric direction (n-to-1, several *source* events per
/// target): an injective base mapping that is complete on V1 leaves no
/// free source events, so there is nothing to merge on that side by
/// construction. The n-to-1 case is therefore handled by orientation,
/// not by a separate routine: treat the splitting system as the *target*
/// — call `ExtendToOneToN(log2, log1, patterns_over_log2, inverse_base)`
/// with the arguments swapped and the base mapping inverted, and read
/// the returned groups as target-per-source-group. `one_to_n_test.cc`
/// exercises this orientation.

}  // namespace hematch

#endif  // HEMATCH_CORE_ONE_TO_N_H_
