#include "core/matching_context.h"

namespace hematch {

namespace {

std::vector<std::vector<EventId>> PatternEventSets(
    const std::vector<Pattern>& patterns) {
  std::vector<std::vector<EventId>> sets;
  sets.reserve(patterns.size());
  for (const Pattern& p : patterns) {
    sets.push_back(p.events());
  }
  return sets;
}

}  // namespace

MatchingContext::MatchingContext(const EventLog& log1, const EventLog& log2,
                                 std::vector<Pattern> patterns)
    : log1_(&log1),
      log2_(&log2),
      graph1_(DependencyGraph::Build(log1)),
      graph2_(DependencyGraph::Build(log2)),
      patterns_(std::move(patterns)),
      pattern_index_(log1.num_events(), PatternEventSets(patterns_)),
      eval1_(std::make_unique<FrequencyEvaluator>(log1)),
      eval2_(std::make_unique<FrequencyEvaluator>(log2)) {
  f1_.reserve(patterns_.size());
  for (const Pattern& p : patterns_) {
    if (p.IsVertexPattern()) {
      f1_.push_back(graph1_.VertexFrequency(p.event()));
    } else if (p.IsEdgePattern()) {
      f1_.push_back(graph1_.EdgeFrequency(p.events()[0], p.events()[1]));
    } else {
      f1_.push_back(eval1_->Frequency(p));
    }
  }
}

double MatchingContext::PatternFrequency2(const Pattern& translated,
                                          ExistenceCheckMode mode) {
  if (translated.IsVertexPattern()) {
    return graph2_.VertexFrequency(translated.event());
  }
  if (translated.IsEdgePattern()) {
    return graph2_.EdgeFrequency(translated.events()[0],
                                 translated.events()[1]);
  }
  if (!PatternMayExist(translated, graph2_, mode)) {
    return 0.0;  // Proposition 3: no trace can match.
  }
  return eval2_->Frequency(translated);
}

}  // namespace hematch
