#include "core/matching_context.h"

namespace hematch {

namespace {

std::vector<std::vector<EventId>> PatternEventSets(
    const std::vector<Pattern>& patterns) {
  std::vector<std::vector<EventId>> sets;
  sets.reserve(patterns.size());
  for (const Pattern& p : patterns) {
    sets.push_back(p.events());
  }
  return sets;
}

}  // namespace

MatchingContext::MatchingContext(const EventLog& log1, const EventLog& log2,
                                 std::vector<Pattern> patterns,
                                 ContextTelemetryOptions telemetry,
                                 ContextPrecomputeOptions precompute)
    : log1_(&log1),
      log2_(&log2),
      graph1_(DependencyGraph::Build(log1)),
      graph2_(DependencyGraph::Build(log2)),
      patterns_(std::move(patterns)),
      pattern_index_(log1.num_events(), PatternEventSets(patterns_)),
      eval1_(std::make_shared<FrequencyEvaluator>(log1)),
      eval2_(std::make_shared<FrequencyEvaluator>(log2)),
      cooc2_(std::make_shared<CooccurrenceIndex>(log2)),
      owned_metrics_(telemetry.shared_registry != nullptr
                         ? nullptr
                         : std::make_unique<obs::MetricsRegistry>(
                               telemetry.enabled)),
      metrics_(telemetry.shared_registry != nullptr ? telemetry.shared_registry
                                                    : owned_metrics_.get()),
      tracer_(telemetry.tracer),
      trace_recorder_(telemetry.trace_recorder),
      owned_governor_(telemetry.shared_governor != nullptr
                          ? nullptr
                          : std::make_unique<exec::ExecutionGovernor>()),
      governor_(telemetry.shared_governor != nullptr
                    ? telemetry.shared_governor
                    : owned_governor_.get()),
      existence_checks_(metrics_->GetCounter("existence.checks")),
      existence_pruned_(metrics_->GetCounter("existence.pruned")) {
  obs::Counter* evictions = metrics_->GetCounter("freq.cache_evictions");
  eval1_->set_eviction_counter(evictions);
  eval2_->set_eviction_counter(evictions);
  eval1_->set_trace_recorder(trace_recorder_);
  eval2_->set_trace_recorder(trace_recorder_);
  obs::ScopedSpan build_span(trace_recorder_, "context.build", "core");
  build_span.AddArg("patterns", static_cast<double>(patterns_.size()));
  if (precompute.enabled) {
    // Warm the source-side memo in parallel: vertex and edge patterns
    // resolve through dependency-graph labels below and need no scan, so
    // only the complex patterns are sharded. The sequential f1 loop then
    // runs entirely on cache hits (or finishes the tail on a cancelled
    // pass).
    std::vector<Pattern> complex_patterns;
    for (const Pattern& p : patterns_) {
      if (!p.IsVertexPattern() && !p.IsEdgePattern()) {
        complex_patterns.push_back(p);
      }
    }
    FrequencyEvaluator::PrecomputeOptions opts;
    opts.threads = precompute.threads;
    opts.min_parallel_patterns = precompute.min_parallel_patterns;
    opts.cancel = precompute.cancel;
    const FrequencyEvaluator::PrecomputeStats ps =
        eval1_->PrecomputeAll(complex_patterns, opts);
    metrics_->GetCounter("freq.precompute.patterns")
        ->Increment(ps.patterns_evaluated);
    metrics_->GetCounter("freq.precompute.threads")
        ->Increment(static_cast<std::uint64_t>(ps.threads_used));
    metrics_->GetCounter("freq.precompute.ms")
        ->Increment(static_cast<std::uint64_t>(ps.elapsed_ms));
  }
  f1_.reserve(patterns_.size());
  for (const Pattern& p : patterns_) {
    if (p.IsVertexPattern()) {
      f1_.push_back(graph1_.VertexFrequency(p.event()));
    } else if (p.IsEdgePattern()) {
      f1_.push_back(graph1_.EdgeFrequency(p.events()[0], p.events()[1]));
    } else {
      f1_.push_back(eval1_->Frequency(p));
    }
  }
}

MatchingContext::MatchingContext(const MatchingContext& base,
                                 exec::ExecutionGovernor* governor)
    : log1_(base.log1_),
      log2_(base.log2_),
      graph1_(base.graph1_),
      graph2_(base.graph2_),
      patterns_(base.patterns_),
      pattern_index_(base.pattern_index_),
      eval1_(base.eval1_),
      eval2_(base.eval2_),
      cooc2_(base.cooc2_),
      f1_(base.f1_),
      owned_metrics_(nullptr),
      metrics_(base.metrics_),
      tracer_(nullptr),
      trace_recorder_(base.trace_recorder_),
      owned_governor_(nullptr),
      governor_(governor),
      existence_checks_(base.existence_checks_),
      existence_pruned_(base.existence_pruned_) {}

void MatchingContext::ArmBudget(const exec::RunBudget& budget,
                                const exec::CancelToken* cancel) {
  governor_->Arm(budget, cancel);
  eval1_->set_cancel_token(cancel);
  eval2_->set_cancel_token(cancel);
  if (budget.max_memory_bytes > 0) {
    // Leave half the ceiling to the search frontier; split the rest
    // between the two memo caches.
    const std::size_t per_cache = budget.max_memory_bytes / 4;
    eval1_->set_max_cache_bytes(per_cache > 0 ? per_cache : 1);
    eval2_->set_max_cache_bytes(per_cache > 0 ? per_cache : 1);
  }
}

const CooccurrenceIndex& MatchingContext::cooccurrence2() {
  if (!cooc2_->built()) {
    cooc2_->EnsureBuilt();
    metrics_->GetCounter("freq2.cooc.builds")->Increment();
    metrics_->GetGauge("freq2.cooc.build_ms")->Set(cooc2_->build_ms());
  }
  return *cooc2_;
}

double MatchingContext::PatternFrequency2(const Pattern& translated,
                                          ExistenceCheckMode mode) {
  if (translated.IsVertexPattern()) {
    return graph2_.VertexFrequency(translated.event());
  }
  if (translated.IsEdgePattern()) {
    return graph2_.EdgeFrequency(translated.events()[0],
                                 translated.events()[1]);
  }
  existence_checks_->Increment();
  if (!PatternMayExist(translated, graph2_, mode)) {
    existence_pruned_->Increment();
    return 0.0;  // Proposition 3: no trace can match.
  }
  return eval2_->Frequency(translated);
}

namespace {

void ExportEvaluatorStats(const FrequencyEvaluator& eval,
                          const std::string& prefix,
                          obs::TelemetrySnapshot& snapshot) {
  const FrequencyEvaluator::Stats& s = eval.stats();
  snapshot.counters[prefix + "evaluations"] = s.evaluations;
  snapshot.counters[prefix + "cache_hits"] = s.cache_hits;
  snapshot.counters[prefix + "cache_misses"] = s.cache_misses;
  snapshot.counters[prefix + "cache_evictions"] = s.cache_evictions;
  snapshot.counters[prefix + "traces_scanned"] = s.traces_scanned;
  snapshot.counters[prefix + "windows_tested"] = s.windows_tested;
  snapshot.counters[prefix + "scan_aborts"] = s.scan_aborts;
  snapshot.counters[prefix + "empty_shortcuts"] = s.empty_shortcuts;
  snapshot.counters[prefix + "path.bitmap"] = s.bitmap_scans;
  snapshot.counters[prefix + "path.postings"] = s.postings_scans;
  snapshot.counters[prefix + "path.fullscan"] = s.full_scans;
  const TraceIndex::Stats& ix = eval.trace_index().stats();
  snapshot.counters[prefix + "index.candidate_queries"] = ix.candidate_queries;
  snapshot.counters[prefix + "index.postings_scanned"] = ix.postings_scanned;
  snapshot.counters[prefix + "index.candidates_yielded"] =
      ix.candidates_yielded;
  if (const BitmapTraceIndex* bitmap = eval.bitmap_index()) {
    snapshot.counters[prefix + "bitmap.queries"] = bitmap->stats().queries;
    snapshot.counters[prefix + "bitmap.words_anded"] =
        bitmap->stats().words_anded;
  }
}

}  // namespace

obs::TelemetrySnapshot MatchingContext::SnapshotTelemetry() const {
  obs::TelemetrySnapshot snapshot = obs::CaptureSnapshot(*metrics_);
  if (!metrics_->enabled()) {
    return snapshot;  // Disabled: stay empty, allocate nothing downstream.
  }
  ExportEvaluatorStats(*eval1_, "freq1.", snapshot);
  ExportEvaluatorStats(*eval2_, "freq2.", snapshot);
  return snapshot;
}

}  // namespace hematch
