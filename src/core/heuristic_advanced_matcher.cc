#include "core/heuristic_advanced_matcher.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/alternating_tree.h"
#include "core/match_telemetry.h"
#include "core/theta_score.h"
#include "obs/stopwatch.h"

namespace hematch {

namespace {

// Converts padded match arrays into a Mapping over the real vocabularies,
// dropping pairs that involve padding rows/columns. With partial
// mappings, columns `j >= n2` are ⊥ slots: a real source matched there
// is explicitly unmapped.
Mapping ToMapping(const std::vector<std::int32_t>& match1, std::size_t n1,
                  std::size_t n2, bool partial) {
  Mapping mapping(n1, n2);
  for (std::size_t i = 0; i < n1; ++i) {
    const std::int32_t j = match1[i];
    if (j == kUnmatchedVertex) {
      continue;
    }
    if (static_cast<std::size_t>(j) < n2) {
      mapping.Set(static_cast<EventId>(i), static_cast<EventId>(j));
    } else if (partial) {
      mapping.SetUnmapped(static_cast<EventId>(i));
    }
  }
  return mapping;
}

}  // namespace

HeuristicAdvancedMatcher::HeuristicAdvancedMatcher(
    HeuristicAdvancedOptions options)
    : options_(std::move(options)) {}

Result<MatchResult> HeuristicAdvancedMatcher::Match(
    MatchingContext& context) const {
  const obs::Stopwatch watch;
  const std::size_t n1 = context.num_sources();
  const std::size_t n2 = context.num_targets();
  const bool partial = options_.scorer.partial.enabled();
  if (n1 > n2 && !partial) {
    return Status::InvalidArgument(
        "heuristic matcher requires |V1| <= |V2|; swap the logs or "
        "enable partial mappings");
  }
  // With partial mappings the matrix gains one ⊥ column per real
  // source, making the rectangle |V1| x (|V2| + |V1|) feasible for any
  // vocabulary sizes.
  const std::size_t num_cols = partial ? n2 + n1 : n2;
  const std::size_t n = std::max(n1, num_cols);

  MappingScorer scorer(context, options_.scorer);
  exec::ExecutionGovernor& governor = context.governor();
  const std::string method = name();
  const std::string slug = obs::MetricSlug(method);
  obs::Counter* augmentations =
      context.metrics().GetCounter(slug + ".augmentations");
  obs::Counter* trees_built = context.metrics().GetCounter(slug + ".trees_built");
  obs::SearchTracer* tracer = context.tracer();
  obs::ScopedSpan match_span(context.trace_recorder(), "match." + slug,
                             "core");

  // Padded theta: dummy sources (i >= n1) score 0 against every target,
  // the "artificial events" that equalize |V1| and |V2|. ⊥ columns cost
  // the penalty for real sources and nothing for dummy rows.
  std::vector<std::vector<double>> theta(n, std::vector<double>(n, 0.0));
  {
    const std::vector<std::vector<double>> real =
        ComputeThetaScores(context, options_.theta_form);
    for (std::size_t i = 0; i < n1; ++i) {
      std::copy(real[i].begin(), real[i].end(), theta[i].begin());
      if (partial) {
        for (std::size_t j = n2; j < num_cols; ++j) {
          theta[i][j] = -options_.scorer.partial.unmapped_penalty;
        }
      }
    }
  }

  // Initial feasible labeling: l1[i] = max_j theta(i, j), l2[j] = 0.
  std::vector<double> label1(n, 0.0);
  std::vector<double> label2(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    label1[i] = *std::max_element(theta[i].begin(), theta[i].end());
  }

  std::vector<std::int32_t> match1(n, kUnmatchedVertex);
  std::vector<std::int32_t> match2(n, kUnmatchedVertex);

  MatchResult result;
  bool tripped = false;
  for (std::size_t iteration = 0; iteration < n && !tripped; ++iteration) {
    if (!governor.Poll()) {
      tripped = true;
      break;
    }
    // Candidate generation: a maximal alternating tree per unmatched
    // source, scored per augmenting path (Lines 3-7 of Algorithm 3).
    double best_score = -std::numeric_limits<double>::infinity();
    AlternatingTree best_tree;
    std::int32_t best_root = kUnmatchedVertex;
    std::int32_t best_endpoint = kUnmatchedVertex;

    for (std::size_t u = 0; u < n && !tripped; ++u) {
      if (match1[u] != kUnmatchedVertex) {
        continue;
      }
      AlternatingTree tree = BuildAlternatingTree(
          theta, label1, label2, match1, match2, static_cast<std::int32_t>(u));
      trees_built->Increment();
      for (std::int32_t endpoint : tree.unmatched_targets) {
        if (!governor.CheckExpansions(1)) {
          tripped = true;
          break;
        }
        ++result.mappings_processed;
        std::vector<std::int32_t> candidate1 = match1;
        std::vector<std::int32_t> candidate2 = match2;
        AugmentAlongPath(tree, static_cast<std::int32_t>(u), endpoint,
                         candidate1, candidate2);
        const Mapping candidate = ToMapping(candidate1, n1, n2, partial);
        const double score = scorer.ComputeScore(candidate).total();
        if (score > best_score) {
          best_score = score;
          best_tree = tree;  // Copy; the winning labels are committed below.
          best_root = static_cast<std::int32_t>(u);
          best_endpoint = endpoint;
        }
      }
    }
    if (tripped && best_root == kUnmatchedVertex) {
      break;  // Budget gone before any candidate; complete greedily below.
    }
    HEMATCH_CHECK(best_root != kUnmatchedVertex,
                  "no augmenting path found (violates Proposition 5)");

    AugmentAlongPath(best_tree, best_root, best_endpoint, match1, match2);
    label1 = std::move(best_tree.label1);
    label2 = std::move(best_tree.label2);
    augmentations->Increment();
    ++result.nodes_visited;
    if (tracer != nullptr) {
      // One epoch per committed augmentation: `best_score` is the g + h
      // of the mapping just committed — the objective trajectory.
      obs::SearchProgress p;
      p.method = method;
      p.epoch = iteration;
      p.nodes_visited = result.nodes_visited;
      p.mappings_processed = result.mappings_processed;
      p.depth = iteration + 1;
      p.max_depth = n;
      p.best_f = best_score;
      p.best_g = best_score;
      p.existence_prune_hits = context.existence_prune_hits();
      p.elapsed_ms = watch.ElapsedMs();
      tracer->OnProgress(p);
    }
  }

  Mapping mapping = ToMapping(match1, n1, n2, partial);
  if (tripped) {
    // Anytime: first-fit the sources the truncated augmentation loop
    // left unmatched so the returned mapping is still complete.
    for (std::size_t i = 0; i < n1; ++i) {
      const EventId source = static_cast<EventId>(i);
      if (mapping.IsSourceDecided(source)) continue;
      bool placed = false;
      for (EventId target = 0; target < n2; ++target) {
        if (!mapping.IsTargetUsed(target)) {
          mapping.Set(source, target);
          placed = true;
          break;
        }
      }
      if (!placed) {
        mapping.SetUnmapped(source);  // Targets exhausted (|V1| > |V2|).
      }
    }
    result.termination = governor.reason();
  }
  HEMATCH_CHECK(mapping.IsComplete(), "advanced heuristic left V1 unmapped");
  result.objective = scorer.ComputeG(mapping);
  result.mapping = std::move(mapping);
  FinalizePartialMapping(context, method, options_.scorer.partial, result);
  FinalizeMatchTelemetry(context, method, watch, result);
  if (tracer != nullptr) {
    obs::SearchProgress done;
    done.method = method;
    done.epoch = n;
    done.nodes_visited = result.nodes_visited;
    done.mappings_processed = result.mappings_processed;
    done.depth = n;
    done.max_depth = n;
    done.best_f = result.objective;
    done.best_g = result.objective;
    done.existence_prune_hits = context.existence_prune_hits();
    done.elapsed_ms = result.elapsed_ms;
    tracer->OnComplete(done);
  }
  return result;
}

}  // namespace hematch
