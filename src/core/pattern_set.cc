#include "core/pattern_set.h"

namespace hematch {

std::vector<Pattern> BuildPatternSet(
    const DependencyGraph& g1, const std::vector<Pattern>& complex_patterns,
    const PatternSetOptions& options) {
  std::vector<Pattern> patterns;
  if (options.include_vertices) {
    for (EventId v = 0; v < g1.num_vertices(); ++v) {
      patterns.push_back(Pattern::Event(v));
    }
  }
  if (options.include_edges) {
    for (const auto& [u, v] : g1.edges()) {
      if (u == v) {
        continue;  // A repeated event violates pattern distinctness;
                   // self-loop pairs cannot be SEQ patterns.
      }
      patterns.push_back(Pattern::Edge(u, v));
    }
  }
  patterns.insert(patterns.end(), complex_patterns.begin(),
                  complex_patterns.end());
  return patterns;
}

}  // namespace hematch
