#ifndef HEMATCH_CORE_BOUNDING_H_
#define HEMATCH_CORE_BOUNDING_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/dependency_graph.h"
#include "pattern/pattern.h"

namespace hematch {

/// Which upper bound `Δ(p, U2)` the search uses for the `h` function.
enum class BoundKind : std::uint8_t {
  /// Section 3.3: each remaining pattern may contribute up to 1.0
  /// (`h = |P \ P_M'|`). Cheap and very loose — the paper's
  /// "Pattern-Simple".
  kSimple,
  /// Section 4 / Algorithm 2 / Table 2: bound the reachable frequency by
  /// the maximum vertex frequency `fn` and `w(p)` times the maximum edge
  /// frequency `fe` among the events the pattern can still be mapped to —
  /// the paper's "Pattern-Tight".
  kTight,
  /// kTight further capped by pairwise trace co-occurrence ceilings from
  /// the bitmap index (freq/cooccurrence.h): a trace matches a pattern
  /// only if it contains every pattern event, so `f2` can never exceed
  /// the co-occurrence fraction of any event pair the translated pattern
  /// is forced to include. Strictly tighter than kTight (each extra cap
  /// is a true upper bound on the reachable `f2`), hence still
  /// admissible.
  kBitmapTight,
};

/// True for the bound kinds that need per-node frequency ceilings over
/// `U2` (everything except the Section 3.3 constant bound).
inline bool BoundUsesCeilings(BoundKind kind) {
  return kind != BoundKind::kSimple;
}

/// Frequency ceilings over a set of candidate target events: the largest
/// vertex frequency and the largest edge frequency of the induced
/// subgraph. These cap the frequency of any pattern mapped into the set.
struct FrequencyCeilings {
  double max_vertex = 0.0;
  double max_edge = 0.0;
};

/// Computes ceilings for the target set `targets` in `g2`
/// (O(|targets| + induced edges)).
FrequencyCeilings ComputeCeilings(const DependencyGraph& g2,
                                  const std::vector<EventId>& targets);

/// The tight upper bound of Algorithm 2 given precomputed ceilings:
///
///   f_min = min(fn, w(p) * fe)   for patterns with >= 2 events
///   f_min = fn                    for vertex patterns (no edges involved)
///   Δ     = 1 - (f1 - f_min)/(f1 + f_min)   when f_min < f1, else 1.0
///
/// `f1` is the pattern's source-log frequency. When `f1` is 0 the bound is
/// 0 (the contribution convention gives d(p) = 0 whenever f1 = 0).
///
/// Note: the journal text's Algorithm 2 lines 9-12 print the comparison
/// the wrong way around (as printed it would return a value above 1.0);
/// this implements the evidently intended direction, which is also the
/// direction that makes the bound admissible. See DESIGN.md.
///
/// `f2_cap` is an optional additional upper bound on the reachable
/// target frequency (kBitmapTight's co-occurrence ceiling); pass
/// +infinity to disable. `f_min` becomes `min(f_min, f2_cap)`.
double TightUpperBound(const Pattern& pattern, double f1,
                       const FrequencyCeilings& ceilings,
                       double f2_cap = std::numeric_limits<double>::infinity());

/// Full `Δ(p, U2)` (Problem 2): 0 when `|V(p)| > |targets|` (the pattern
/// no longer fits), otherwise `TightUpperBound` over the ceilings of
/// `targets`. This is the self-contained form used in tests; the matchers
/// use the two-step form to share ceilings across patterns.
double PatternUpperBound(const Pattern& pattern, double f1,
                         const std::vector<EventId>& targets,
                         const DependencyGraph& g2);

}  // namespace hematch

#endif  // HEMATCH_CORE_BOUNDING_H_
