#include "core/mapping_scorer.h"

#include <algorithm>

#include "common/check.h"

namespace hematch {

MappingScorer::MappingScorer(MatchingContext& context,
                             const ScorerOptions& options)
    : context_(&context),
      options_(options),
      g_evals_(context.metrics().GetCounter("scorer.g_evaluations")),
      h_evals_(context.metrics().GetCounter("scorer.h_evaluations")),
      completed_contributions_(
          context.metrics().GetCounter("scorer.completed_contributions")) {
  if (options_.bound == BoundKind::kBitmapTight) {
    cooc_ = &context.cooccurrence2();
  }
}

std::size_t MappingScorer::MappedEventCount(std::size_t pid,
                                            const Mapping& m) const {
  const Pattern& p = context_->patterns()[pid];
  std::size_t mapped = 0;
  for (EventId v : p.events()) {
    if (m.IsSourceMapped(v)) {
      ++mapped;
    }
  }
  return mapped;
}

double MappingScorer::CompletedContribution(std::size_t pid,
                                            const Mapping& m) {
  completed_contributions_->Increment();
  const Pattern& p = context_->patterns()[pid];
  const double f1 = context_->PatternFrequency1(pid);
  // Vertex and edge patterns dominate the pattern set; their translated
  // frequencies are dependency-graph labels, so skip building the
  // translated pattern object entirely.
  if (p.IsVertexPattern()) {
    const EventId t = m.TargetOf(p.event());
    HEMATCH_DCHECK(t != kInvalidEventId, "pattern event unmapped");
    return FrequencySimilarity(f1, context_->graph2().VertexFrequency(t));
  }
  if (p.IsEdgePattern()) {
    const EventId tu = m.TargetOf(p.events()[0]);
    const EventId tv = m.TargetOf(p.events()[1]);
    HEMATCH_DCHECK(tu != kInvalidEventId && tv != kInvalidEventId,
                   "pattern event unmapped");
    return FrequencySimilarity(f1, context_->graph2().EdgeFrequency(tu, tv));
  }
  std::optional<Pattern> translated = m.TranslatePattern(p);
  HEMATCH_CHECK(translated.has_value(),
                "CompletedContribution on a pattern with unmapped events");
  const double f2 =
      context_->PatternFrequency2(*translated, options_.existence);
  return FrequencySimilarity(f1, f2);
}

bool MappingScorer::IsPatternDead(std::size_t pid, const Mapping& m) const {
  if (!options_.partial.enabled() || m.num_null_sources() == 0) {
    return false;
  }
  const Pattern& p = context_->patterns()[pid];
  for (EventId v : p.events()) {
    if (m.IsSourceNull(v)) {
      return true;
    }
  }
  return false;
}

double MappingScorer::CompletedOrDeadContribution(std::size_t pid,
                                                  const Mapping& m) {
  if (IsPatternDead(pid, m)) {
    return 0.0;
  }
  return CompletedContribution(pid, m);
}

double MappingScorer::NullPenalty(const Mapping& m) const {
  if (!options_.partial.enabled() || m.num_null_sources() == 0) {
    return 0.0;
  }
  return options_.partial.unmapped_penalty *
         static_cast<double>(m.num_null_sources());
}

double MappingScorer::ForcedNullPenalty(const Mapping& m,
                                        std::size_t num_unused) const {
  if (!options_.partial.enabled()) {
    return 0.0;
  }
  const std::size_t undecided =
      m.num_sources() - m.size() - m.num_null_sources();
  if (undecided <= num_unused) {
    return 0.0;
  }
  return options_.partial.unmapped_penalty *
         static_cast<double>(undecided - num_unused);
}

double MappingScorer::ComputeG(const Mapping& m) {
  g_evals_->Increment();
  double g = 0.0;
  for (std::size_t pid = 0; pid < context_->num_patterns(); ++pid) {
    const Pattern& p = context_->patterns()[pid];
    if (MappedEventCount(pid, m) == p.size()) {
      g += CompletedContribution(pid, m);
    }
  }
  return g - NullPenalty(m);
}

void MappingScorer::FillCoocCaps(const std::vector<EventId>& unused,
                                 CoocCaps& caps) const {
  caps.max_unused_pair = cooc_->MaxPairAmong(unused);
  caps.best_with_unused.assign(context_->num_targets(), 0.0);
  for (EventId t = 0; t < caps.best_with_unused.size(); ++t) {
    double best = 0.0;
    for (EventId u : unused) {
      best = std::max(best, cooc_->At(t, u));
    }
    caps.best_with_unused[t] = best;
  }
}

double MappingScorer::IncompleteBound(std::size_t pid, const Mapping& m,
                                      const FrequencyCeilings& u2_ceilings,
                                      std::size_t num_unused,
                                      std::vector<char>& in_union,
                                      const CoocCaps* caps) {
  const Pattern& p = context_->patterns()[pid];
  const double f1 = context_->PatternFrequency1(pid);
  // A pattern with a ⊥ event contributes 0 to every completion; this is
  // both required for admissibility bookkeeping and strictly tighter
  // than either Δ estimate.
  if (IsPatternDead(pid, m)) {
    return 0.0;
  }
  if (options_.bound == BoundKind::kSimple) {
    return 1.0;  // Section 3.3: each remaining pattern contributes <= 1.
  }

  // Collect the targets already fixed for this pattern's mapped events.
  std::vector<EventId> fixed;
  for (EventId v : p.events()) {
    const EventId t = m.TargetOf(v);
    if (t != kInvalidEventId) {
      fixed.push_back(t);
    }
  }
  // Δ = 0 when the pattern no longer fits into M(V(p) \ U1) ∪ U2.
  if (p.size() > num_unused + fixed.size()) {
    return 0.0;
  }

  // Extend the U2 ceilings with the fixed targets: vertices directly,
  // edges by scanning each fixed target's incident dependency edges whose
  // other endpoint lies in the union (U2 ∪ fixed). This yields exactly the
  // induced-subgraph ceilings of Algorithm 2 for the set
  // M(V(p) \ U1) ∪ U2 in O(|p| * degree) instead of O(|U2| + E).
  FrequencyCeilings ceilings = u2_ceilings;
  const DependencyGraph& g2 = context_->graph2();
  for (EventId t : fixed) {
    in_union[t] = 1;
  }
  for (EventId t : fixed) {
    ceilings.max_vertex = std::max(ceilings.max_vertex, g2.VertexFrequency(t));
    for (EventId w : g2.OutNeighbors(t)) {
      if (in_union[w] != 0) {
        ceilings.max_edge = std::max(ceilings.max_edge, g2.EdgeFrequency(t, w));
      }
    }
    for (EventId w : g2.InNeighbors(t)) {
      if (in_union[w] != 0) {
        ceilings.max_edge = std::max(ceilings.max_edge, g2.EdgeFrequency(w, t));
      }
    }
  }
  for (EventId t : fixed) {
    in_union[t] = 0;  // Restore scratch state.
  }

  // kBitmapTight: cap the reachable f2 by pairwise trace co-occurrence.
  // Every completion translates the pattern to `fixed ∪ (free events
  // drawn from U2)`, and a trace matches only if it contains all of
  // them — so each forced pair yields a valid ceiling, and the minimum
  // over the pair families below stays a true upper bound (Δ remains
  // admissible).
  double f2_cap = std::numeric_limits<double>::infinity();
  if (caps != nullptr && p.size() >= 2) {
    for (std::size_t i = 0; i < fixed.size(); ++i) {
      for (std::size_t j = i + 1; j < fixed.size(); ++j) {
        f2_cap = std::min(f2_cap, cooc_->At(fixed[i], fixed[j]));
      }
    }
    const std::size_t free_slots = p.size() - fixed.size();
    if (free_slots >= 1 && !fixed.empty()) {
      // Each fixed target must co-occur with at least one unused target.
      double worst = std::numeric_limits<double>::infinity();
      for (EventId t : fixed) {
        worst = std::min(worst, caps->best_with_unused[t]);
      }
      f2_cap = std::min(f2_cap, worst);
    }
    if (free_slots >= 2) {
      // At least one pair lies entirely inside the unused targets.
      f2_cap = std::min(f2_cap, caps->max_unused_pair);
    }
  }
  return TightUpperBound(p, f1, ceilings, f2_cap);
}

double MappingScorer::ComputeH(const Mapping& m) {
  h_evals_->Increment();
  double h = 0.0;
  const std::vector<EventId> unused = m.UnusedTargets();
  FrequencyCeilings u2_ceilings;
  std::vector<char> in_union;
  CoocCaps caps;
  const bool use_cooc = options_.bound == BoundKind::kBitmapTight;
  if (BoundUsesCeilings(options_.bound)) {
    u2_ceilings = ComputeCeilings(context_->graph2(), unused);
    in_union.assign(context_->num_targets(), 0);
    for (EventId t : unused) {
      in_union[t] = 1;
    }
    if (use_cooc) {
      FillCoocCaps(unused, caps);
    }
  }
  for (std::size_t pid = 0; pid < context_->num_patterns(); ++pid) {
    const Pattern& p = context_->patterns()[pid];
    if (MappedEventCount(pid, m) == p.size()) {
      continue;  // Contributes to g, not h.
    }
    h += IncompleteBound(pid, m, u2_ceilings, unused.size(), in_union,
                          use_cooc ? &caps : nullptr);
  }
  return h - ForcedNullPenalty(m, unused.size());
}

double MappingScorer::ComputeHForRemaining(
    const Mapping& m, const std::vector<std::uint32_t>& remaining) {
  h_evals_->Increment();
  double h = 0.0;
  const std::vector<EventId> unused = m.UnusedTargets();
  FrequencyCeilings u2_ceilings;
  std::vector<char> in_union;
  CoocCaps caps;
  const bool use_cooc = options_.bound == BoundKind::kBitmapTight;
  if (BoundUsesCeilings(options_.bound)) {
    u2_ceilings = ComputeCeilings(context_->graph2(), unused);
    in_union.assign(context_->num_targets(), 0);
    for (EventId t : unused) {
      in_union[t] = 1;
    }
    if (use_cooc) {
      FillCoocCaps(unused, caps);
    }
  }
  for (std::uint32_t pid : remaining) {
    h += IncompleteBound(pid, m, u2_ceilings, unused.size(), in_union,
                          use_cooc ? &caps : nullptr);
  }
  return h - ForcedNullPenalty(m, unused.size());
}

MappingScorer::Score MappingScorer::ComputeScore(const Mapping& m) {
  g_evals_->Increment();
  h_evals_->Increment();
  Score score;
  const std::vector<EventId> unused = m.UnusedTargets();
  FrequencyCeilings u2_ceilings;
  std::vector<char> in_union;
  CoocCaps caps;
  const bool use_cooc = options_.bound == BoundKind::kBitmapTight;
  if (BoundUsesCeilings(options_.bound)) {
    u2_ceilings = ComputeCeilings(context_->graph2(), unused);
    in_union.assign(context_->num_targets(), 0);
    for (EventId t : unused) {
      in_union[t] = 1;
    }
    if (use_cooc) {
      FillCoocCaps(unused, caps);
    }
  }
  for (std::size_t pid = 0; pid < context_->num_patterns(); ++pid) {
    const Pattern& p = context_->patterns()[pid];
    if (MappedEventCount(pid, m) == p.size()) {
      score.g += CompletedContribution(pid, m);
    } else {
      score.h += IncompleteBound(pid, m, u2_ceilings, unused.size(), in_union,
                          use_cooc ? &caps : nullptr);
    }
  }
  score.g -= NullPenalty(m);
  score.h -= ForcedNullPenalty(m, unused.size());
  return score;
}

}  // namespace hematch
