#ifndef HEMATCH_CORE_THETA_SCORE_H_
#define HEMATCH_CORE_THETA_SCORE_H_

#include <cstdint>
#include <vector>

#include "core/matching_context.h"

namespace hematch {

/// Which reading of Formula (2) the estimated scores use. The journal
/// text prints the per-pattern term as
///
///     1 - (f1(p) - f2(v2)) / (f1(p) + f2(v2))        [no absolute value]
///
/// while the surrounding properties (1)/(2) — "theta equals the normal
/// distance when the estimate is perfect / for vertex patterns" — only
/// hold for the absolute-value variant. Both readings are implemented;
/// see DESIGN.md for the analysis and the ablation bench for the
/// measured difference.
enum class ThetaForm : std::uint8_t {
  /// The formula as printed, clamped at 1 per pattern exactly like
  /// Algorithm 2's bounds: a target whose frequency can support the
  /// pattern (`f2 >= f1(p)`) contributes the full 1/|p|, a weaker target
  /// is penalized by `1 - (f1 - f2)/(f1 + f2)`. Since an event's
  /// frequency upper-bounds the frequency of every pattern containing
  /// it, this reads as an *optimistic-bound* estimate: events carrying
  /// high-frequency patterns demand high-frequency targets, everything
  /// else ties — and the `g + h` candidate scoring resolves the ties.
  /// (Unclamped, the printed term `2 f2/(f1+f2)` is strictly increasing
  /// in f2 and provably shifts every event one frequency rank up; the
  /// clamp is what Algorithm 2 itself does when `f_min >= f(p)`.)
  /// Default.
  kOptimistic,
  /// With |f1 - f2|: a symmetric similarity, maximal when the target
  /// event's frequency equals the *pattern's* frequency. Makes
  /// Proposition 6 exact for vertex patterns, but systematically prefers
  /// low-frequency targets for events involved in low-frequency patterns.
  kAbsolute,
};

/// The estimated score matrix of Formula (2), Section 5.1.1:
///
///   theta(v1, v2) = sum over patterns p containing v1 of
///                   (1/|p|) * (1 - (f1(p) - f2(v2)) / (f1(p) + f2(v2)))
///
/// `f2(v2)` is the *vertex* frequency of the candidate target: the
/// pattern's eventual target-side frequency is unknown before the rest of
/// the mapping exists, so the event's own frequency stands in for it.
/// The (1/|p|) factor spreads each pattern's potential contribution over
/// its events, so summing theta over a complete mapping estimates the
/// pattern normal distance.
///
/// Returns an n1 x n2 matrix indexed [source][target]. Terms with
/// f1(p) + f2(v2) = 0 contribute 0 (same convention as d(p)).
std::vector<std::vector<double>> ComputeThetaScores(
    const MatchingContext& context, ThetaForm form = ThetaForm::kOptimistic);

}  // namespace hematch

#endif  // HEMATCH_CORE_THETA_SCORE_H_
