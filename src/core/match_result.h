#ifndef HEMATCH_CORE_MATCH_RESULT_H_
#define HEMATCH_CORE_MATCH_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/mapping.h"
#include "exec/budget.h"

namespace hematch {

/// One rung of a fallback ladder (see api/fallback_matcher.h): which
/// matcher ran, how it stopped, and what it produced.
struct StageAttempt {
  std::string method;
  exec::TerminationReason termination = exec::TerminationReason::kCompleted;
  double objective = 0.0;
  double elapsed_ms = 0.0;
  std::uint64_t mappings_processed = 0;
};

/// Outcome of one matcher run.
struct MatchResult {
  /// The returned event mapping. Complete on V1 even for truncated
  /// runs: matchers are anytime and greedily complete their best
  /// partial mapping when the budget trips (see docs/ROBUSTNESS.md).
  Mapping mapping{0, 0};

  /// The objective value the method maximized (pattern normal distance
  /// for the framework methods; method-specific surrogate objectives for
  /// the Iterative/Entropy baselines — see each matcher's docs).
  double objective = 0.0;

  /// Number of candidate mappings processed: child expansions `M'` in the
  /// A* search (Line 7 of Algorithm 1) or augmentations `M^ij` considered
  /// by the heuristics (Line 6 of Algorithm 3). This is the x-axis of the
  /// paper's Figs. 7c/8c/9c/10c.
  std::uint64_t mappings_processed = 0;

  /// Search-tree nodes popped from the A* queue; the heuristics report
  /// committed steps/augmentations, the assignment baselines report 0.
  std::uint64_t nodes_visited = 0;

  /// Wall-clock spent inside Match(), in milliseconds. Populated
  /// uniformly by every matcher via `FinalizeMatchTelemetry` (the same
  /// stopwatch the registry's `<method>.elapsed_ms` gauge records).
  double elapsed_ms = 0.0;

  /// How the run stopped. kCompleted means the method's full answer;
  /// anything else marks an anytime result truncated by the budget.
  exec::TerminationReason termination = exec::TerminationReason::kCompleted;

  /// Bracket on the true optimum when `bounds_certified`:
  /// `lower_bound` is the score of the returned mapping (achievable),
  /// `upper_bound` dominates every mapping the search had not ruled
  /// out.  A completed exact run has lower == upper == objective.
  /// Heuristic runs certify nothing (bounds_certified == false).
  double lower_bound = 0.0;
  double upper_bound = 0.0;
  bool bounds_certified = false;

  /// Sources the mapping left at ⊥ and the total penalty charged for
  /// them, when partial mappings are enabled (see PartialMappingOptions;
  /// `objective` already includes `-penalty_paid`). Both stay empty/0
  /// under the classic total-mapping objective.
  std::vector<EventId> unmapped_sources;
  double penalty_paid = 0.0;

  /// Fallback ladder trace: one entry per stage that ran, in order.
  /// Empty for plain single-matcher runs (no ladder involved).
  std::vector<StageAttempt> stages;

  bool completed() const {
    return termination == exec::TerminationReason::kCompleted;
  }
  /// True when a fallback ladder had to run more than one stage.
  bool degraded() const { return stages.size() > 1; }
};

}  // namespace hematch

#endif  // HEMATCH_CORE_MATCH_RESULT_H_
