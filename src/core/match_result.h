#ifndef HEMATCH_CORE_MATCH_RESULT_H_
#define HEMATCH_CORE_MATCH_RESULT_H_

#include <cstdint>
#include <string>

#include "core/mapping.h"

namespace hematch {

/// Outcome of one matcher run.
struct MatchResult {
  /// The returned event mapping (complete on V1 unless the run failed).
  Mapping mapping{0, 0};

  /// The objective value the method maximized (pattern normal distance
  /// for the framework methods; method-specific surrogate objectives for
  /// the Iterative/Entropy baselines — see each matcher's docs).
  double objective = 0.0;

  /// Number of candidate mappings processed: child expansions `M'` in the
  /// A* search (Line 7 of Algorithm 1) or augmentations `M^ij` considered
  /// by the heuristics (Line 6 of Algorithm 3). This is the x-axis of the
  /// paper's Figs. 7c/8c/9c/10c.
  std::uint64_t mappings_processed = 0;

  /// Search-tree nodes popped from the A* queue; the heuristics report
  /// committed steps/augmentations, the assignment baselines report 0.
  std::uint64_t nodes_visited = 0;

  /// Wall-clock spent inside Match(), in milliseconds. Populated
  /// uniformly by every matcher via `FinalizeMatchTelemetry` (the same
  /// stopwatch the registry's `<method>.elapsed_ms` gauge records).
  double elapsed_ms = 0.0;
};

}  // namespace hematch

#endif  // HEMATCH_CORE_MATCH_RESULT_H_
