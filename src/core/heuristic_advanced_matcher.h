#ifndef HEMATCH_CORE_HEURISTIC_ADVANCED_MATCHER_H_
#define HEMATCH_CORE_HEURISTIC_ADVANCED_MATCHER_H_

#include <string>

#include "core/mapping_scorer.h"
#include "core/matcher.h"
#include "core/theta_score.h"

namespace hematch {

/// Options for the advanced heuristic.
struct HeuristicAdvancedOptions {
  ScorerOptions scorer;
  /// Which reading of Formula (2) drives the labeling (see ThetaForm).
  ThetaForm theta_form = ThetaForm::kOptimistic;
};

/// The advanced heuristic of Section 5 (Algorithms 3 and 4).
///
/// Fixes the two deficiencies of the greedy heuristic by (1) steering with
/// the global estimated scores `theta(v1, v2)` of Formula (2) through a
/// Kuhn-Munkres-style labeling, and (2) allowing already-made pairs to be
/// *re-matched*: each iteration builds, for every unmatched source, the
/// maximal alternating tree of Algorithm 4, considers every augmenting
/// path it contains (each re-routes earlier pairs along the path), scores
/// the resulting candidate mapping with the same `g + h` bound the exact
/// search uses, and commits the best candidate together with that tree's
/// updated labels.
///
/// Guarantees:
///  * terminates with a complete mapping (Proposition 5: every maximal
///    tree contains an augmenting path while the matching is imperfect);
///  * O(n^4 * |L| * |P|) (Section 5.3.2);
///  * returns the optimal mapping when all patterns are vertex patterns
///    (Proposition 6) — the labels certify a maximum-weight matching of
///    theta, which then equals the pattern normal distance.
///
/// When |V1| < |V2| the instance is padded with dummy sources of
/// all-zero theta (the paper's "artificial events"); dummy pairs are
/// dropped from the returned mapping.
class HeuristicAdvancedMatcher : public Matcher {
 public:
  explicit HeuristicAdvancedMatcher(HeuristicAdvancedOptions options = {});

  std::string name() const override { return "Heuristic-Advanced"; }
  Result<MatchResult> Match(MatchingContext& context) const override;

 private:
  HeuristicAdvancedOptions options_;
};

}  // namespace hematch

#endif  // HEMATCH_CORE_HEURISTIC_ADVANCED_MATCHER_H_
