#include "core/heuristic_simple_matcher.h"

#include <algorithm>
#include <vector>

#include "core/match_telemetry.h"
#include "obs/stopwatch.h"

namespace hematch {

HeuristicSimpleMatcher::HeuristicSimpleMatcher(HeuristicSimpleOptions options)
    : options_(std::move(options)) {}

Result<MatchResult> HeuristicSimpleMatcher::Match(
    MatchingContext& context) const {
  const obs::Stopwatch watch;
  const std::size_t n1 = context.num_sources();
  const std::size_t n2 = context.num_targets();
  if (n1 > n2) {
    return Status::InvalidArgument(
        "heuristic matcher requires |V1| <= |V2|; swap the logs");
  }

  MappingScorer scorer(context, options_.scorer);
  exec::ExecutionGovernor& governor = context.governor();
  const std::string method = name();
  obs::Counter* steps =
      context.metrics().GetCounter(obs::MetricSlug(method) + ".steps");
  obs::SearchTracer* tracer = context.tracer();
  obs::ScopedSpan match_span(context.trace_recorder(),
                             "match." + obs::MetricSlug(method), "core");

  // Same expansion order as the exact matcher.
  std::vector<EventId> order(n1);
  for (EventId v = 0; v < n1; ++v) {
    order[v] = v;
  }
  const PatternIndex& ip = context.pattern_index();
  std::stable_sort(order.begin(), order.end(), [&](EventId a, EventId b) {
    return ip.PatternCount(a) > ip.PatternCount(b);
  });

  MatchResult result;
  Mapping mapping(n1, n2);
  bool tripped = false;
  for (std::size_t depth = 0; depth < n1 && !tripped; ++depth) {
    if (!governor.Poll()) {
      tripped = true;
      break;
    }
    const EventId source = order[depth];
    double best_score = -1.0;
    EventId best_target = kInvalidEventId;
    for (EventId target = 0; target < n2; ++target) {
      if (mapping.IsTargetUsed(target)) {
        continue;
      }
      if (!governor.CheckExpansions(1)) {
        tripped = true;
        break;
      }
      ++result.mappings_processed;
      mapping.Set(source, target);
      const double score = scorer.ComputeScore(mapping).total();
      mapping.Erase(source);
      if (score > best_score) {
        best_score = score;
        best_target = target;
      }
    }
    if (tripped && best_target == kInvalidEventId) {
      break;  // Nothing scored at this depth; first-fit it below.
    }
    HEMATCH_CHECK(best_target != kInvalidEventId,
                  "no unused target available");
    mapping.Set(source, best_target);
    steps->Increment();
    ++result.nodes_visited;
    if (tracer != nullptr) {
      // One epoch per greedy step: the committed g + h is the objective
      // trajectory the paper plots for the heuristics.
      const MappingScorer::Score score = scorer.ComputeScore(mapping);
      obs::SearchProgress p;
      p.method = method;
      p.epoch = depth;
      p.nodes_visited = result.nodes_visited;
      p.mappings_processed = result.mappings_processed;
      p.depth = depth + 1;
      p.max_depth = n1;
      p.best_f = score.total();
      p.best_g = score.g;
      p.bound_gap = score.h;
      p.existence_prune_hits = context.existence_prune_hits();
      p.elapsed_ms = watch.ElapsedMs();
      tracer->OnProgress(p);
    }
  }

  if (tripped) {
    // Anytime: first-fit the remaining sources so the mapping is still
    // complete, and report how the run was cut short.
    for (std::size_t depth = 0; depth < n1; ++depth) {
      const EventId source = order[depth];
      if (mapping.IsSourceMapped(source)) continue;
      for (EventId target = 0; target < n2; ++target) {
        if (!mapping.IsTargetUsed(target)) {
          mapping.Set(source, target);
          break;
        }
      }
    }
    result.termination = governor.reason();
  }
  result.objective = scorer.ComputeG(mapping);
  result.mapping = std::move(mapping);
  FinalizeMatchTelemetry(context, method, watch, result);
  if (tracer != nullptr) {
    obs::SearchProgress done;
    done.method = method;
    done.epoch = n1;
    done.nodes_visited = result.nodes_visited;
    done.mappings_processed = result.mappings_processed;
    done.depth = n1;
    done.max_depth = n1;
    done.best_f = result.objective;
    done.best_g = result.objective;
    done.existence_prune_hits = context.existence_prune_hits();
    done.elapsed_ms = result.elapsed_ms;
    tracer->OnComplete(done);
  }
  return result;
}

}  // namespace hematch
