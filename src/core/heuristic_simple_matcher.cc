#include "core/heuristic_simple_matcher.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/match_telemetry.h"
#include "obs/stopwatch.h"

namespace hematch {

HeuristicSimpleMatcher::HeuristicSimpleMatcher(HeuristicSimpleOptions options)
    : options_(std::move(options)) {}

Result<MatchResult> HeuristicSimpleMatcher::Match(
    MatchingContext& context) const {
  const obs::Stopwatch watch;
  const std::size_t n1 = context.num_sources();
  const std::size_t n2 = context.num_targets();
  const bool partial = options_.scorer.partial.enabled();
  if (n1 > n2 && !partial) {
    return Status::InvalidArgument(
        "heuristic matcher requires |V1| <= |V2|; swap the logs or "
        "enable partial mappings");
  }

  MappingScorer scorer(context, options_.scorer);
  exec::ExecutionGovernor& governor = context.governor();
  const std::string method = name();
  obs::Counter* steps =
      context.metrics().GetCounter(obs::MetricSlug(method) + ".steps");
  obs::SearchTracer* tracer = context.tracer();
  obs::ScopedSpan match_span(context.trace_recorder(),
                             "match." + obs::MetricSlug(method), "core");

  // Same expansion order as the exact matcher.
  std::vector<EventId> order(n1);
  for (EventId v = 0; v < n1; ++v) {
    order[v] = v;
  }
  const PatternIndex& ip = context.pattern_index();
  std::stable_sort(order.begin(), order.end(), [&](EventId a, EventId b) {
    return ip.PatternCount(a) > ip.PatternCount(b);
  });

  MatchResult result;
  Mapping mapping(n1, n2);
  bool tripped = false;
  for (std::size_t depth = 0; depth < n1 && !tripped; ++depth) {
    if (!governor.Poll()) {
      tripped = true;
      break;
    }
    const EventId source = order[depth];
    double best_score = -std::numeric_limits<double>::infinity();
    EventId best_target = kInvalidEventId;
    bool best_null = false;
    for (EventId target = 0; target < n2; ++target) {
      if (mapping.IsTargetUsed(target)) {
        continue;
      }
      if (!governor.CheckExpansions(1)) {
        tripped = true;
        break;
      }
      ++result.mappings_processed;
      mapping.Set(source, target);
      const double score = scorer.ComputeScore(mapping).total();
      mapping.Erase(source);
      if (score > best_score) {
        best_score = score;
        best_target = target;
        best_null = false;
      }
    }
    if (partial && !tripped) {
      // The ⊥ augmentation competes with every target on equal terms.
      if (!governor.CheckExpansions(1)) {
        tripped = true;
      } else {
        ++result.mappings_processed;
        mapping.SetUnmapped(source);
        const double score = scorer.ComputeScore(mapping).total();
        mapping.ClearUnmapped(source);
        if (score > best_score) {
          best_score = score;
          best_target = kInvalidEventId;
          best_null = true;
        }
      }
    }
    if (tripped && best_target == kInvalidEventId && !best_null) {
      break;  // Nothing scored at this depth; first-fit it below.
    }
    if (best_null) {
      mapping.SetUnmapped(source);
    } else {
      HEMATCH_CHECK(best_target != kInvalidEventId,
                    "no unused target available");
      mapping.Set(source, best_target);
    }
    steps->Increment();
    ++result.nodes_visited;
    if (tracer != nullptr) {
      // One epoch per greedy step: the committed g + h is the objective
      // trajectory the paper plots for the heuristics.
      const MappingScorer::Score score = scorer.ComputeScore(mapping);
      obs::SearchProgress p;
      p.method = method;
      p.epoch = depth;
      p.nodes_visited = result.nodes_visited;
      p.mappings_processed = result.mappings_processed;
      p.depth = depth + 1;
      p.max_depth = n1;
      p.best_f = score.total();
      p.best_g = score.g;
      p.bound_gap = score.h;
      p.existence_prune_hits = context.existence_prune_hits();
      p.elapsed_ms = watch.ElapsedMs();
      tracer->OnProgress(p);
    }
  }

  if (tripped) {
    // Anytime: first-fit the remaining sources so the mapping is still
    // complete, and report how the run was cut short.
    for (std::size_t depth = 0; depth < n1; ++depth) {
      const EventId source = order[depth];
      if (mapping.IsSourceDecided(source)) continue;
      bool placed = false;
      for (EventId target = 0; target < n2; ++target) {
        if (!mapping.IsTargetUsed(target)) {
          mapping.Set(source, target);
          placed = true;
          break;
        }
      }
      if (!placed) {
        mapping.SetUnmapped(source);  // Targets exhausted (|V1| > |V2|).
      }
    }
    result.termination = governor.reason();
  }
  result.objective = scorer.ComputeG(mapping);
  result.mapping = std::move(mapping);
  FinalizePartialMapping(context, method, options_.scorer.partial, result);
  FinalizeMatchTelemetry(context, method, watch, result);
  if (tracer != nullptr) {
    obs::SearchProgress done;
    done.method = method;
    done.epoch = n1;
    done.nodes_visited = result.nodes_visited;
    done.mappings_processed = result.mappings_processed;
    done.depth = n1;
    done.max_depth = n1;
    done.best_f = result.objective;
    done.best_g = result.objective;
    done.existence_prune_hits = context.existence_prune_hits();
    done.elapsed_ms = result.elapsed_ms;
    tracer->OnComplete(done);
  }
  return result;
}

}  // namespace hematch
