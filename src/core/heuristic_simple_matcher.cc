#include "core/heuristic_simple_matcher.h"

#include <algorithm>
#include <chrono>
#include <vector>

namespace hematch {

HeuristicSimpleMatcher::HeuristicSimpleMatcher(HeuristicSimpleOptions options)
    : options_(std::move(options)) {}

Result<MatchResult> HeuristicSimpleMatcher::Match(
    MatchingContext& context) const {
  const auto start_time = std::chrono::steady_clock::now();
  const std::size_t n1 = context.num_sources();
  const std::size_t n2 = context.num_targets();
  if (n1 > n2) {
    return Status::InvalidArgument(
        "heuristic matcher requires |V1| <= |V2|; swap the logs");
  }

  MappingScorer scorer(context, options_.scorer);

  // Same expansion order as the exact matcher.
  std::vector<EventId> order(n1);
  for (EventId v = 0; v < n1; ++v) {
    order[v] = v;
  }
  const PatternIndex& ip = context.pattern_index();
  std::stable_sort(order.begin(), order.end(), [&](EventId a, EventId b) {
    return ip.PatternCount(a) > ip.PatternCount(b);
  });

  MatchResult result;
  Mapping mapping(n1, n2);
  for (std::size_t depth = 0; depth < n1; ++depth) {
    const EventId source = order[depth];
    double best_score = -1.0;
    EventId best_target = kInvalidEventId;
    for (EventId target = 0; target < n2; ++target) {
      if (mapping.IsTargetUsed(target)) {
        continue;
      }
      ++result.mappings_processed;
      mapping.Set(source, target);
      const double score = scorer.ComputeScore(mapping).total();
      mapping.Erase(source);
      if (score > best_score) {
        best_score = score;
        best_target = target;
      }
    }
    HEMATCH_CHECK(best_target != kInvalidEventId,
                  "no unused target available");
    mapping.Set(source, best_target);
  }

  result.objective = scorer.ComputeG(mapping);
  result.mapping = std::move(mapping);
  result.elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start_time)
                          .count();
  return result;
}

}  // namespace hematch
