#ifndef HEMATCH_CORE_MAPPING_H_
#define HEMATCH_CORE_MAPPING_H_

#include <optional>
#include <string>
#include <vector>

#include "log/event_dictionary.h"
#include "pattern/pattern.h"

namespace hematch {

/// A (possibly partial) injective mapping of events `M : V1 -> V2`
/// (Section 2.1). Sources and targets are dense ids in the respective
/// logs' vocabularies.
class Mapping {
 public:
  /// An empty mapping between vocabularies of the given sizes.
  Mapping(std::size_t num_sources, std::size_t num_targets);

  Mapping(const Mapping&) = default;
  Mapping& operator=(const Mapping&) = default;
  Mapping(Mapping&&) = default;
  Mapping& operator=(Mapping&&) = default;

  /// Adds the pair `source -> target`. Requires both ends currently
  /// unmapped (injectivity).
  void Set(EventId source, EventId target);

  /// Removes the pair for `source`. Requires `source` mapped.
  void Erase(EventId source);

  /// Explicitly maps `source` to ⊥ (no counterpart in `V2`). Requires
  /// `source` currently undecided. Null sources count toward
  /// IsComplete() but consume no target.
  void SetUnmapped(EventId source);

  /// Reverts a SetUnmapped decision. Requires `source` null.
  void ClearUnmapped(EventId source);

  /// Target of `source`, or `kInvalidEventId` when unmapped.
  EventId TargetOf(EventId source) const { return forward_[source]; }

  /// Source mapped to `target`, or `kInvalidEventId` when unused.
  EventId SourceOf(EventId target) const { return backward_[target]; }

  bool IsSourceMapped(EventId source) const {
    return forward_[source] != kInvalidEventId;
  }
  bool IsTargetUsed(EventId target) const {
    return backward_[target] != kInvalidEventId;
  }

  /// True when `source` has been explicitly mapped to ⊥.
  bool IsSourceNull(EventId source) const {
    return !null_.empty() && null_[source] != 0;
  }
  /// True when `source` is either mapped or explicitly ⊥.
  bool IsSourceDecided(EventId source) const {
    return IsSourceMapped(source) || IsSourceNull(source);
  }

  std::size_t num_sources() const { return forward_.size(); }
  std::size_t num_targets() const { return backward_.size(); }

  /// Number of mapped pairs (null sources are not counted).
  std::size_t size() const { return size_; }

  /// Number of sources explicitly mapped to ⊥.
  std::size_t num_null_sources() const { return null_count_; }

  /// True when every source is decided: mapped to a target or
  /// explicitly to ⊥. Without SetUnmapped this is the classic "every
  /// source mapped" (which requires num_sources() <= num_targets()).
  bool IsComplete() const { return size_ + null_count_ == forward_.size(); }

  /// Undecided sources (`U1`: neither mapped nor ⊥), ascending.
  std::vector<EventId> UnmappedSources() const;
  /// Unused targets (`U2`), ascending.
  std::vector<EventId> UnusedTargets() const;
  /// Sources explicitly mapped to ⊥, ascending.
  std::vector<EventId> NullSources() const;

  /// Translates a pattern over `V1` into the corresponding pattern `M(p)`
  /// over `V2`. Returns nullopt when any event of `p` is unmapped.
  std::optional<Pattern> TranslatePattern(const Pattern& pattern) const;

  /// Renders as "A->3, B->4, ..." using the dictionaries when provided.
  std::string ToString(const EventDictionary* source_dict = nullptr,
                       const EventDictionary* target_dict = nullptr) const;

  /// Stable total order over equal-shape mappings: compares the decided
  /// state of each source in id order (undecided < ⊥ < target 0 < target
  /// 1 < ...). Returns <0, 0, >0 like strcmp. Used as the final A*
  /// tie-break key so equal-f frontiers pop in an order independent of
  /// node-creation history — sequential reruns and every parallel-A*
  /// thread count then certify the same canonical optimum.
  static int LexCompare(const Mapping& a, const Mapping& b);

  friend bool operator==(const Mapping& a, const Mapping& b) {
    if (a.forward_ != b.forward_ || a.null_count_ != b.null_count_) {
      return false;
    }
    if (a.null_count_ == 0) {
      return true;
    }
    for (EventId v = 0; v < a.forward_.size(); ++v) {
      if (a.IsSourceNull(v) != b.IsSourceNull(v)) {
        return false;
      }
    }
    return true;
  }

 private:
  std::vector<EventId> forward_;
  std::vector<EventId> backward_;
  // Lazily sized on first SetUnmapped; empty means "no null sources".
  std::vector<unsigned char> null_;
  std::size_t size_ = 0;
  std::size_t null_count_ = 0;
};

}  // namespace hematch

#endif  // HEMATCH_CORE_MAPPING_H_
