#ifndef HEMATCH_CORE_MAPPING_H_
#define HEMATCH_CORE_MAPPING_H_

#include <optional>
#include <string>
#include <vector>

#include "log/event_dictionary.h"
#include "pattern/pattern.h"

namespace hematch {

/// A (possibly partial) injective mapping of events `M : V1 -> V2`
/// (Section 2.1). Sources and targets are dense ids in the respective
/// logs' vocabularies.
class Mapping {
 public:
  /// An empty mapping between vocabularies of the given sizes.
  Mapping(std::size_t num_sources, std::size_t num_targets);

  Mapping(const Mapping&) = default;
  Mapping& operator=(const Mapping&) = default;
  Mapping(Mapping&&) = default;
  Mapping& operator=(Mapping&&) = default;

  /// Adds the pair `source -> target`. Requires both ends currently
  /// unmapped (injectivity).
  void Set(EventId source, EventId target);

  /// Removes the pair for `source`. Requires `source` mapped.
  void Erase(EventId source);

  /// Target of `source`, or `kInvalidEventId` when unmapped.
  EventId TargetOf(EventId source) const { return forward_[source]; }

  /// Source mapped to `target`, or `kInvalidEventId` when unused.
  EventId SourceOf(EventId target) const { return backward_[target]; }

  bool IsSourceMapped(EventId source) const {
    return forward_[source] != kInvalidEventId;
  }
  bool IsTargetUsed(EventId target) const {
    return backward_[target] != kInvalidEventId;
  }

  std::size_t num_sources() const { return forward_.size(); }
  std::size_t num_targets() const { return backward_.size(); }

  /// Number of mapped pairs.
  std::size_t size() const { return size_; }

  /// True when every source is mapped (the notion of "complete" used by
  /// the matchers; requires num_sources() <= num_targets()).
  bool IsComplete() const { return size_ == forward_.size(); }

  /// Unmapped sources (`U1`), ascending.
  std::vector<EventId> UnmappedSources() const;
  /// Unused targets (`U2`), ascending.
  std::vector<EventId> UnusedTargets() const;

  /// Translates a pattern over `V1` into the corresponding pattern `M(p)`
  /// over `V2`. Returns nullopt when any event of `p` is unmapped.
  std::optional<Pattern> TranslatePattern(const Pattern& pattern) const;

  /// Renders as "A->3, B->4, ..." using the dictionaries when provided.
  std::string ToString(const EventDictionary* source_dict = nullptr,
                       const EventDictionary* target_dict = nullptr) const;

  friend bool operator==(const Mapping& a, const Mapping& b) {
    return a.forward_ == b.forward_;
  }

 private:
  std::vector<EventId> forward_;
  std::vector<EventId> backward_;
  std::size_t size_ = 0;
};

}  // namespace hematch

#endif  // HEMATCH_CORE_MAPPING_H_
