#include "core/theta_score.h"

#include "core/normal_distance.h"

namespace hematch {

std::vector<std::vector<double>> ComputeThetaScores(
    const MatchingContext& context, ThetaForm form) {
  const std::size_t n1 = context.num_sources();
  const std::size_t n2 = context.num_targets();
  std::vector<std::vector<double>> theta(n1, std::vector<double>(n2, 0.0));
  for (EventId v1 = 0; v1 < n1; ++v1) {
    for (std::uint32_t pid : context.pattern_index().PatternsInvolving(v1)) {
      const double f1 = context.PatternFrequency1(pid);
      const double weight =
          1.0 / static_cast<double>(context.patterns()[pid].size());
      for (EventId v2 = 0; v2 < n2; ++v2) {
        const double f2 = context.graph2().VertexFrequency(v2);
        if (form == ThetaForm::kAbsolute) {
          theta[v1][v2] += weight * FrequencySimilarity(f1, f2);
        } else if (f2 >= f1) {
          // The target's frequency can support the pattern: the bound on
          // d(p) is 1.0 (Algorithm 2's clamp).
          theta[v1][v2] += weight;
        } else if (f1 + f2 > 0.0) {
          theta[v1][v2] += weight * (1.0 - (f1 - f2) / (f1 + f2));
        }
      }
    }
  }
  return theta;
}

}  // namespace hematch
