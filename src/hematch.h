#ifndef HEMATCH_HEMATCH_H_
#define HEMATCH_HEMATCH_H_

/// \file
/// Umbrella header for the hematch library — matching heterogeneous
/// event logs with SEQ/AND patterns (Zhu et al., ICDE 2014 / Song et
/// al., TKDE 2017).
///
/// Typical entry points:
///  * one call:    `MatchLogs(log1, log2, options)`   (api/match_pipeline.h)
///  * full control: build a `MatchingContext` and run an `AStarMatcher`,
///    `HeuristicAdvancedMatcher`, or a baseline — see README "Quickstart".
///
/// Prefer including the specific headers in production code; this header
/// exists for exploratory use and examples.

#include "api/fallback_matcher.h"
#include "api/match_pipeline.h"
#include "baselines/entropy_matcher.h"
#include "baselines/iterative_matcher.h"
#include "baselines/vertex_edge_matcher.h"
#include "baselines/vertex_matcher.h"
#include "core/astar_matcher.h"
#include "core/heuristic_advanced_matcher.h"
#include "core/heuristic_simple_matcher.h"
#include "core/mapping_io.h"
#include "core/one_to_n.h"
#include "core/pattern_set.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "eval/runner.h"
#include "exec/budget.h"
#include "gen/pattern_miner.h"
#include "graph/dependency_graph.h"
#include "graph/incremental_dependency_graph.h"
#include "log/event_log.h"
#include "log/log_io.h"
#include "log/xes_io.h"
#include "pattern/pattern_parser.h"

#endif  // HEMATCH_HEMATCH_H_
