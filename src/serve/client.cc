#include "serve/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include "log/log_io.h"

namespace hematch::serve {

namespace {

void SleepMs(double ms) {
  if (ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
}

}  // namespace

ServeClient::ServeClient(ClientOptions options)
    : options_(std::move(options)) {}

ServeClient::~ServeClient() { Close(); }

Status ServeClient::Connect() {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Internal("socket() failed: " +
                            std::string(std::strerror(errno)));
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host address '" + options_.host + "'");
  }

  // Non-blocking connect so the timeout is enforceable.
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno == EINPROGRESS) {
    pollfd pfd{fd_, POLLOUT, 0};
    rc = ::poll(&pfd, 1, static_cast<int>(options_.connect_timeout_ms));
    if (rc <= 0) {
      Close();
      return Status::Internal("connect timeout to " + options_.host + ":" +
                              std::to_string(options_.port));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      Close();
      return Status::Internal("connect failed: " +
                              std::string(std::strerror(err)));
    }
  } else if (rc < 0) {
    const int err = errno;
    Close();
    return Status::Internal("connect failed: " +
                            std::string(std::strerror(err)));
  }
  ::fcntl(fd_, F_SETFL, flags);
  return Status::OK();
}

void ServeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  read_buffer_.clear();
}

Status ServeClient::SendLine(const std::string& line) {
  std::string out = line;
  out += '\n';
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return Status::Internal("send failed: " +
                              std::string(std::strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Result<std::string> ServeClient::ReadLine() {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double, std::milli>(options_.read_timeout_ms);
  for (;;) {
    const std::size_t nl = read_buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = read_buffer_.substr(0, nl);
      read_buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      return line;
    }
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      return Status::ResourceExhausted("read timeout after " +
                                       std::to_string(options_.read_timeout_ms) +
                                       " ms");
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::Internal("poll failed: " +
                              std::string(std::strerror(errno)));
    }
    if (rc == 0) {
      continue;  // Loop re-checks the deadline.
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return Status::Internal("connection closed by server");
    }
    if (n < 0) {
      return Status::Internal("recv failed: " +
                              std::string(std::strerror(errno)));
    }
    read_buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Result<ServeResponse> ServeClient::Call(const std::string& request_line) {
  Status last_error = Status::OK();
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      SleepMs(options_.backoff_ms * attempt);
    }
    if (fd_ < 0) {
      Status connect = Connect();
      if (!connect.ok()) {
        last_error = connect;
        continue;
      }
    }
    Status sent = SendLine(request_line);
    if (!sent.ok()) {
      last_error = sent;
      Close();  // Transport broke; next attempt reconnects.
      continue;
    }
    Result<std::string> line = ReadLine();
    if (!line.ok()) {
      last_error = line.status();
      if (line.status().code() == StatusCode::kResourceExhausted) {
        // Read timeout: the response may still arrive later and would
        // desynchronize the stream — drop the connection.
        Close();
        return last_error;
      }
      Close();
      continue;
    }
    Result<ServeResponse> resp = ParseResponse(*line);
    if (!resp.ok()) {
      return resp.status();
    }
    if (!resp->ok && resp->error_code == "REJECTED_OVERLOAD" &&
        options_.retry_overload && attempt < options_.max_retries) {
      SleepMs(resp->retry_after_ms > 0.0 ? resp->retry_after_ms
                                         : options_.backoff_ms * (attempt + 1));
      continue;
    }
    return resp;
  }
  return last_error.ok()
             ? Status::Internal("call failed after retries")
             : last_error;
}

Result<ServeResponse> ServeClient::Ping() {
  return Call(BuildPingRequest(next_id_++, options_.correlation_id));
}

Result<ServeResponse> ServeClient::RegisterLog(const std::string& name,
                                               const EventLog& log) {
  std::ostringstream content;
  HEMATCH_RETURN_IF_ERROR(WriteTraceLog(log, content));
  return RegisterLogText(name, "tr", content.str());
}

Result<ServeResponse> ServeClient::RegisterLogText(const std::string& name,
                                                   const std::string& format,
                                                   const std::string& content) {
  RegisterLogSpec spec;
  spec.name = name;
  spec.format = format;
  spec.content = content;
  return Call(BuildRegisterLogRequest(next_id_++, spec,
                                      options_.correlation_id));
}

Result<ServeResponse> ServeClient::Match(const MatchRequestSpec& spec) {
  return Call(BuildMatchRequest(next_id_++, spec, options_.correlation_id));
}

Result<ServeResponse> ServeClient::Stats() {
  return Call(BuildStatsRequest(next_id_++, options_.correlation_id));
}

Result<ServeResponse> ServeClient::Drain() {
  return Call(BuildDrainRequest(next_id_++, options_.correlation_id));
}

Result<ServeResponse> ServeClient::Metrics() {
  return Call(BuildMetricsRequest(next_id_++, options_.correlation_id));
}

}  // namespace hematch::serve
