#ifndef HEMATCH_SERVE_ACCESS_LOG_H_
#define HEMATCH_SERVE_ACCESS_LOG_H_

/// \file
/// The structured access log: one `hematch.access.v1` JSON line per
/// request the server answered, written to a size-rotated JSONL file.
/// This is the "what happened to *this* request" record — request and
/// correlation ids, admission verdict, shed level, queue wait, run
/// time, termination reason, objective bounds, bytes moved, and (when
/// the request's trace was sampled) the trace file it landed in.
///
/// `FormatAccessLogEntry`/`ParseAccessLogLine` round-trip, and the
/// round-trip is pinned by tests so external consumers can rely on the
/// schema.

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "obs/logfile.h"

namespace hematch::serve {

inline constexpr std::string_view kAccessLogSchema = "hematch.access.v1";

/// One served request, as recorded after its response was written.
struct AccessLogEntry {
  double ts_ms = 0.0;            ///< Milliseconds since server start.
  std::uint64_t request_id = 0;  ///< Server-assigned, unique per line.
  std::string correlation_id;    ///< Client-supplied; may be empty.
  std::string op;                ///< Protocol verb ("match", "ping", ...).
  std::string tenant;            ///< Fair-share key (match only).
  std::string method;            ///< Requested method (match only).
  /// "admitted" | "rejected_depth" | "rejected_backlog" | "draining" |
  /// "inline" (ops answered without queueing).
  std::string admission = "inline";
  int shed_level = 0;
  double queue_ms = 0.0;
  double run_ms = 0.0;          ///< Matcher wall-clock (match only).
  double total_ms = 0.0;        ///< Parse-to-response-written.
  std::string termination;      ///< Run termination reason (match only).
  bool ok = false;              ///< Response `ok` flag.
  std::string error_code;       ///< Machine-readable code when !ok.
  double objective = 0.0;
  double lower_bound = 0.0;
  double upper_bound = 0.0;
  std::uint64_t bytes_in = 0;   ///< Request line length.
  std::uint64_t bytes_out = 0;  ///< Response line length.
  bool sampled = false;         ///< A per-request trace was written.
  std::string trace_file;       ///< Path of that trace; empty otherwise.
};

/// Renders one entry as a single JSON line (no trailing newline).
std::string FormatAccessLogEntry(const AccessLogEntry& entry);

/// Parses a line produced by `FormatAccessLogEntry`; rejects lines with
/// the wrong schema tag.
Result<AccessLogEntry> ParseAccessLogLine(std::string_view line);

/// Serializes entries to a `RotatingLineFile`. Thread-safe (the
/// underlying file serializes writers).
class AccessLog {
 public:
  /// Opens `path` for appending; rotates to `path.1` at `max_bytes`.
  AccessLog(std::string path, std::int64_t max_bytes);

  bool ok() const { return file_.ok(); }
  const std::string& path() const { return file_.path(); }

  Status Write(const AccessLogEntry& entry);

 private:
  obs::RotatingLineFile file_;
};

}  // namespace hematch::serve

#endif  // HEMATCH_SERVE_ACCESS_LOG_H_
