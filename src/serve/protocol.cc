#include "serve/protocol.h"

#include <cmath>
#include <sstream>

#include "obs/metrics_json.h"

namespace hematch::serve {

namespace {

using obs::JsonEscape;
using obs::JsonNumber;
using obs::JsonValue;

std::string Quoted(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  out += JsonEscape(text);
  out += '"';
  return out;
}

/// Envelope opener shared by every request builder.
void OpenRequest(std::ostringstream& os, std::uint64_t id, std::string_view op,
                 std::string_view correlation_id = {}) {
  os << "{\"schema\":" << Quoted(kServeSchema) << ",\"op\":" << Quoted(op)
     << ",\"id\":" << id;
  if (!correlation_id.empty()) {
    os << ",\"correlation_id\":" << Quoted(correlation_id);
  }
}

/// Envelope opener shared by every response builder.
void OpenResponse(std::ostringstream& os, std::uint64_t id,
                  std::string_view op, bool ok,
                  const RequestContext& ctx = {}) {
  os << "{\"schema\":" << Quoted(kServeSchema) << ",\"id\":" << id
     << ",\"op\":" << Quoted(op) << ",\"ok\":" << (ok ? "true" : "false");
  if (ctx.request_id != 0) {
    os << ",\"request_id\":" << ctx.request_id;
  }
  if (!ctx.correlation_id.empty()) {
    os << ",\"correlation_id\":" << Quoted(ctx.correlation_id);
  }
}

const JsonValue* RequireField(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.Find(key);
  return v;
}

Result<std::string> RequireString(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = RequireField(obj, key);
  if (v == nullptr || v->kind != JsonValue::Kind::kString) {
    return Status::InvalidArgument("missing or non-string field '" +
                                   std::string(key) + "'");
  }
  return v->text;
}

}  // namespace

const char* RequestOpToString(RequestOp op) {
  switch (op) {
    case RequestOp::kPing:
      return "ping";
    case RequestOp::kRegisterLog:
      return "register_log";
    case RequestOp::kMatch:
      return "match";
    case RequestOp::kStats:
      return "stats";
    case RequestOp::kDrain:
      return "drain";
    case RequestOp::kMetrics:
      return "metrics";
  }
  return "unknown";
}

const char* ErrorCodeToString(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest:
      return "BAD_REQUEST";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kRejectedOverload:
      return "REJECTED_OVERLOAD";
    case ErrorCode::kRejectedDraining:
      return "REJECTED_DRAINING";
    case ErrorCode::kInternal:
      return "INTERNAL";
  }
  return "INTERNAL";
}

Result<ServeRequest> ParseRequest(std::string_view line) {
  HEMATCH_ASSIGN_OR_RETURN(JsonValue doc, obs::ParseJson(line));
  if (doc.kind != JsonValue::Kind::kObject) {
    return Status::ParseError("request is not a JSON object");
  }
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || schema->TextOr("") != kServeSchema) {
    return Status::ParseError(std::string("request schema must be ") +
                              std::string(kServeSchema));
  }

  ServeRequest req;
  if (const JsonValue* id = doc.Find("id");
      id != nullptr && id->kind == JsonValue::Kind::kNumber &&
      id->number >= 0) {
    req.id = static_cast<std::uint64_t>(id->number);
  }
  if (const JsonValue* corr = doc.Find("correlation_id"); corr != nullptr) {
    if (corr->kind != JsonValue::Kind::kString) {
      return Status::InvalidArgument("correlation_id must be a string");
    }
    req.correlation_id = corr->text;
  }

  HEMATCH_ASSIGN_OR_RETURN(std::string op, RequireString(doc, "op"));
  if (op == "ping") {
    req.op = RequestOp::kPing;
    return req;
  }
  if (op == "stats") {
    req.op = RequestOp::kStats;
    return req;
  }
  if (op == "drain") {
    req.op = RequestOp::kDrain;
    return req;
  }
  if (op == "metrics") {
    req.op = RequestOp::kMetrics;
    return req;
  }
  if (op == "register_log") {
    req.op = RequestOp::kRegisterLog;
    HEMATCH_ASSIGN_OR_RETURN(req.register_log.name,
                             RequireString(doc, "name"));
    if (req.register_log.name.empty()) {
      return Status::InvalidArgument("register_log requires a non-empty name");
    }
    HEMATCH_ASSIGN_OR_RETURN(req.register_log.content,
                             RequireString(doc, "content"));
    if (const JsonValue* fmt = doc.Find("format"); fmt != nullptr) {
      if (fmt->kind != JsonValue::Kind::kString ||
          (fmt->text != "tr" && fmt->text != "csv")) {
        return Status::InvalidArgument(
            "register_log format must be \"tr\" or \"csv\"");
      }
      req.register_log.format = fmt->text;
    }
    return req;
  }
  if (op == "match") {
    req.op = RequestOp::kMatch;
    HEMATCH_ASSIGN_OR_RETURN(req.match.log1, RequireString(doc, "log1"));
    HEMATCH_ASSIGN_OR_RETURN(req.match.log2, RequireString(doc, "log2"));
    if (const JsonValue* pats = doc.Find("patterns"); pats != nullptr) {
      if (pats->kind != JsonValue::Kind::kArray) {
        return Status::InvalidArgument("patterns must be an array of strings");
      }
      for (const JsonValue& p : pats->items) {
        if (p.kind != JsonValue::Kind::kString) {
          return Status::InvalidArgument(
              "patterns must be an array of strings");
        }
        req.match.patterns.push_back(p.text);
      }
    }
    if (const JsonValue* tenant = doc.Find("tenant");
        tenant != nullptr && tenant->kind == JsonValue::Kind::kString &&
        !tenant->text.empty()) {
      req.match.tenant = tenant->text;
    }
    if (const JsonValue* dl = doc.Find("deadline_ms"); dl != nullptr) {
      if (dl->kind != JsonValue::Kind::kNumber || dl->number < 0 ||
          !std::isfinite(dl->number)) {
        return Status::InvalidArgument(
            "deadline_ms must be a non-negative number");
      }
      req.match.deadline_ms = dl->number;
    }
    if (const JsonValue* cap = doc.Find("max_expansions"); cap != nullptr) {
      if (cap->kind != JsonValue::Kind::kNumber || cap->number < 0) {
        return Status::InvalidArgument(
            "max_expansions must be a non-negative number");
      }
      req.match.max_expansions = static_cast<std::uint64_t>(cap->number);
    }
    if (const JsonValue* pen = doc.Find("partial_penalty"); pen != nullptr) {
      if (pen->kind != JsonValue::Kind::kNumber || pen->number < 0) {
        return Status::InvalidArgument(
            "partial_penalty must be a non-negative number");
      }
      req.match.partial_penalty = pen->number;
    }
    if (const JsonValue* method = doc.Find("method"); method != nullptr) {
      if (method->kind != JsonValue::Kind::kString ||
          (method->text != "auto" && method->text != "exact" &&
           method->text != "heuristic" && method->text != "parallel")) {
        return Status::InvalidArgument(
            "method must be \"auto\", \"exact\", \"heuristic\", or "
            "\"parallel\"");
      }
      req.match.method = method->text;
    }
    if (const JsonValue* st = doc.Find("search_threads"); st != nullptr) {
      if (st->kind != JsonValue::Kind::kNumber || st->number < 0 ||
          st->number > 1024) {
        return Status::InvalidArgument(
            "search_threads must be a number in [0, 1024]");
      }
      req.match.search_threads = static_cast<int>(st->number);
    }
    return req;
  }
  return Status::InvalidArgument("unknown op '" + op + "'");
}

std::string BuildPingRequest(std::uint64_t id,
                             std::string_view correlation_id) {
  std::ostringstream os;
  OpenRequest(os, id, "ping", correlation_id);
  os << "}";
  return os.str();
}

std::string BuildRegisterLogRequest(std::uint64_t id,
                                    const RegisterLogSpec& spec,
                                    std::string_view correlation_id) {
  std::ostringstream os;
  OpenRequest(os, id, "register_log", correlation_id);
  os << ",\"name\":" << Quoted(spec.name)
     << ",\"format\":" << Quoted(spec.format)
     << ",\"content\":" << Quoted(spec.content) << "}";
  return os.str();
}

std::string BuildMatchRequest(std::uint64_t id, const MatchRequestSpec& spec,
                              std::string_view correlation_id) {
  std::ostringstream os;
  OpenRequest(os, id, "match", correlation_id);
  os << ",\"log1\":" << Quoted(spec.log1)
     << ",\"log2\":" << Quoted(spec.log2) << ",\"patterns\":[";
  for (std::size_t i = 0; i < spec.patterns.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    os << Quoted(spec.patterns[i]);
  }
  os << "],\"tenant\":" << Quoted(spec.tenant);
  if (spec.deadline_ms > 0.0) {
    os << ",\"deadline_ms\":" << JsonNumber(spec.deadline_ms);
  }
  if (spec.max_expansions > 0) {
    os << ",\"max_expansions\":" << spec.max_expansions;
  }
  if (std::isfinite(spec.partial_penalty)) {
    os << ",\"partial_penalty\":" << JsonNumber(spec.partial_penalty);
  }
  if (spec.search_threads > 0) {
    os << ",\"search_threads\":" << spec.search_threads;
  }
  os << ",\"method\":" << Quoted(spec.method) << "}";
  return os.str();
}

std::string BuildStatsRequest(std::uint64_t id,
                              std::string_view correlation_id) {
  std::ostringstream os;
  OpenRequest(os, id, "stats", correlation_id);
  os << "}";
  return os.str();
}

std::string BuildDrainRequest(std::uint64_t id,
                              std::string_view correlation_id) {
  std::ostringstream os;
  OpenRequest(os, id, "drain", correlation_id);
  os << "}";
  return os.str();
}

std::string BuildMetricsRequest(std::uint64_t id,
                                std::string_view correlation_id) {
  std::ostringstream os;
  OpenRequest(os, id, "metrics", correlation_id);
  os << "}";
  return os.str();
}

std::string BuildPingResponse(std::uint64_t id, const RequestContext& ctx) {
  std::ostringstream os;
  OpenResponse(os, id, "ping", /*ok=*/true, ctx);
  os << "}";
  return os.str();
}

std::string BuildRegisterLogResponse(std::uint64_t id, std::string_view name,
                                     std::string_view fingerprint,
                                     std::size_t num_traces,
                                     std::size_t num_events,
                                     const RequestContext& ctx) {
  std::ostringstream os;
  OpenResponse(os, id, "register_log", /*ok=*/true, ctx);
  os << ",\"name\":" << Quoted(name)
     << ",\"fingerprint\":" << Quoted(fingerprint)
     << ",\"num_traces\":" << num_traces << ",\"num_events\":" << num_events
     << "}";
  return os.str();
}

std::string BuildMatchResponse(std::uint64_t id, const MatchReplyData& data,
                               const RequestContext& ctx) {
  std::ostringstream os;
  OpenResponse(os, id, "match", /*ok=*/true, ctx);
  os << ",\"termination\":" << Quoted(data.termination)
     << ",\"degraded\":" << (data.degraded ? "true" : "false")
     << ",\"shed_level\":" << data.shed_level
     << ",\"swapped\":" << (data.swapped ? "true" : "false")
     << ",\"context_warm\":" << (data.context_warm ? "true" : "false")
     << ",\"objective\":" << JsonNumber(data.objective)
     << ",\"lower_bound\":" << JsonNumber(data.lower_bound)
     << ",\"upper_bound\":" << JsonNumber(data.upper_bound)
     << ",\"bounds_certified\":" << (data.bounds_certified ? "true" : "false")
     << ",\"elapsed_ms\":" << JsonNumber(data.elapsed_ms)
     << ",\"queue_ms\":" << JsonNumber(data.queue_ms)
     << ",\"mappings_processed\":" << data.mappings_processed;
  os << ",\"mapping\":[";
  for (std::size_t i = 0; i < data.mapping.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    os << "[" << Quoted(data.mapping[i].first) << ","
       << Quoted(data.mapping[i].second) << "]";
  }
  os << "],\"unmapped\":[";
  for (std::size_t i = 0; i < data.unmapped.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    os << Quoted(data.unmapped[i]);
  }
  os << "],\"stages\":[";
  for (std::size_t i = 0; i < data.stages.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    os << "{\"method\":" << Quoted(data.stages[i].first)
       << ",\"termination\":" << Quoted(data.stages[i].second) << "}";
  }
  os << "]}";
  return os.str();
}

std::string BuildStatsResponse(std::uint64_t id,
                               const obs::TelemetrySnapshot& snapshot,
                               double uptime_ms, const RequestContext& ctx,
                               const obs::TelemetrySnapshot* windowed) {
  std::ostringstream os;
  OpenResponse(os, id, "stats", /*ok=*/true, ctx);
  // TelemetryToHeartbeatLine is the single-line reduction of a snapshot
  // (histograms become percentiles), which is exactly what a line
  // protocol needs — the final full snapshot still goes to disk.
  os << ",\"telemetry\":"
     << obs::TelemetryToHeartbeatLine(snapshot, /*seq=*/0, uptime_ms, windowed)
     << "}";
  return os.str();
}

std::string BuildDrainResponse(std::uint64_t id, std::size_t in_flight,
                               std::size_t queued, const RequestContext& ctx) {
  std::ostringstream os;
  OpenResponse(os, id, "drain", /*ok=*/true, ctx);
  os << ",\"in_flight\":" << in_flight << ",\"queued\":" << queued << "}";
  return os.str();
}

std::string BuildMetricsResponse(std::uint64_t id, std::string_view exposition,
                                 const RequestContext& ctx) {
  std::ostringstream os;
  OpenResponse(os, id, "metrics", /*ok=*/true, ctx);
  os << ",\"content_type\":" << Quoted("text/plain; version=0.0.4")
     << ",\"exposition\":" << Quoted(exposition) << "}";
  return os.str();
}

std::string BuildErrorResponse(std::uint64_t id, RequestOp op, ErrorCode code,
                               std::string_view message, double retry_after_ms,
                               const RequestContext& ctx) {
  std::ostringstream os;
  OpenResponse(os, id, RequestOpToString(op), /*ok=*/false, ctx);
  os << ",\"error\":{\"code\":" << Quoted(ErrorCodeToString(code))
     << ",\"message\":" << Quoted(message);
  if (retry_after_ms > 0.0) {
    os << ",\"retry_after_ms\":" << JsonNumber(retry_after_ms);
  }
  os << "}}";
  return os.str();
}

Result<ServeResponse> ParseResponse(std::string_view line) {
  HEMATCH_ASSIGN_OR_RETURN(JsonValue doc, obs::ParseJson(line));
  if (doc.kind != JsonValue::Kind::kObject) {
    return Status::ParseError("response is not a JSON object");
  }
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || schema->TextOr("") != kServeSchema) {
    return Status::ParseError("response missing schema " +
                              std::string(kServeSchema));
  }
  ServeResponse resp;
  resp.raw = std::string(line);
  if (const JsonValue* id = doc.Find("id");
      id != nullptr && id->kind == JsonValue::Kind::kNumber) {
    resp.id = static_cast<std::uint64_t>(id->number);
  }
  if (const JsonValue* op = doc.Find("op"); op != nullptr) {
    resp.op = op->TextOr("");
  }
  if (const JsonValue* ok = doc.Find("ok");
      ok != nullptr && ok->kind == JsonValue::Kind::kBool) {
    resp.ok = ok->boolean;
  }
  if (const JsonValue* rid = doc.Find("request_id");
      rid != nullptr && rid->kind == JsonValue::Kind::kNumber &&
      rid->number >= 0) {
    resp.request_id = static_cast<std::uint64_t>(rid->number);
  }
  if (const JsonValue* corr = doc.Find("correlation_id"); corr != nullptr) {
    resp.correlation_id = corr->TextOr("");
  }
  if (const JsonValue* err = doc.Find("error");
      err != nullptr && err->kind == JsonValue::Kind::kObject) {
    if (const JsonValue* code = err->Find("code"); code != nullptr) {
      resp.error_code = code->TextOr("");
    }
    if (const JsonValue* msg = err->Find("message"); msg != nullptr) {
      resp.error_message = msg->TextOr("");
    }
    if (const JsonValue* retry = err->Find("retry_after_ms");
        retry != nullptr) {
      resp.retry_after_ms = retry->NumberOr(0.0);
    }
  }
  resp.body = std::move(doc);
  return resp;
}

}  // namespace hematch::serve
