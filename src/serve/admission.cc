#include "serve/admission.h"

#include <limits>
#include <utility>

namespace hematch::serve {

namespace {

double MsSince(std::chrono::steady_clock::time_point then,
               std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - then).count();
}

}  // namespace

AdmissionQueue::AdmissionQueue(AdmissionOptions options)
    : options_(options) {}

AdmissionQueue::PushResult AdmissionQueue::Push(Item item) {
  item.enqueued = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) {
    return PushResult::kDraining;
  }
  if (depth_ >= options_.max_depth) {
    return PushResult::kOverloadDepth;
  }
  if (options_.max_backlog_ms > 0.0 &&
      backlog_ms_ + item.deadline_ms > options_.max_backlog_ms &&
      depth_ > 0) {
    // An empty queue always admits one item: a single request whose
    // deadline exceeds the backlog bound must still be servable.
    return PushResult::kOverloadBacklog;
  }
  TenantLane& lane = lanes_[item.tenant];
  if (lane.items.empty()) {
    // A (re)appearing tenant starts at the current minimum pass so it
    // neither banks credit while idle nor owes debt from past bursts.
    double min_pass = std::numeric_limits<double>::infinity();
    for (const auto& [name, other] : lanes_) {
      if (!other.items.empty()) {
        min_pass = std::min(min_pass, other.pass);
      }
    }
    if (min_pass != std::numeric_limits<double>::infinity()) {
      lane.pass = std::max(lane.pass, min_pass);
    }
  }
  backlog_ms_ += item.deadline_ms;
  ++depth_;
  lane.items.push_back(std::move(item));
  cv_.notify_one();
  return PushResult::kAdmitted;
}

std::optional<AdmissionQueue::Item> AdmissionQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return depth_ > 0 || closed_; });
  if (depth_ == 0) {
    return std::nullopt;  // Closed and fully drained.
  }

  const auto now = std::chrono::steady_clock::now();
  auto pick = lanes_.end();

  // Starvation backstop: the globally oldest item wins outright once it
  // has aged past the threshold, whatever its tenant's pass says.
  if (options_.aging_ms > 0.0) {
    auto oldest_lane = lanes_.end();
    std::chrono::steady_clock::time_point oldest{};
    for (auto it = lanes_.begin(); it != lanes_.end(); ++it) {
      if (!it->second.items.empty() &&
          (oldest_lane == lanes_.end() ||
           it->second.items.front().enqueued < oldest)) {
        oldest_lane = it;
        oldest = it->second.items.front().enqueued;
      }
    }
    if (oldest_lane != lanes_.end() &&
        MsSince(oldest, now) >= options_.aging_ms) {
      pick = oldest_lane;
    }
  }

  if (pick == lanes_.end()) {
    // Stride fair share: smallest virtual pass among non-empty lanes;
    // FIFO arrival breaks ties so equal-pass tenants alternate.
    std::chrono::steady_clock::time_point pick_front{};
    for (auto it = lanes_.begin(); it != lanes_.end(); ++it) {
      TenantLane& lane = it->second;
      if (lane.items.empty()) {
        continue;
      }
      if (pick == lanes_.end() || lane.pass < pick->second.pass ||
          (lane.pass == pick->second.pass &&
           lane.items.front().enqueued < pick_front)) {
        pick = it;
        pick_front = lane.items.front().enqueued;
      }
    }
  }

  Item item = std::move(pick->second.items.front());
  pick->second.items.pop_front();
  pick->second.pass += 1.0;
  if (pick->second.items.empty()) {
    // Drop the emptied lane so lanes_ stays bounded by queue depth; a
    // returning tenant re-seeds its pass via the join-at-current-pass
    // logic in Push, so no credit or debt is lost with the lane.
    lanes_.erase(pick);
  }
  --depth_;
  ++executing_;
  backlog_ms_ -= item.deadline_ms;
  if (backlog_ms_ < 0.0) {
    backlog_ms_ = 0.0;
  }
  return item;
}

void AdmissionQueue::MarkDone() {
  std::lock_guard<std::mutex> lock(mu_);
  if (executing_ > 0) {
    --executing_;
  }
}

void AdmissionQueue::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depth_;
}

std::size_t AdmissionQueue::lanes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lanes_.size();
}

std::size_t AdmissionQueue::executing() const {
  std::lock_guard<std::mutex> lock(mu_);
  return executing_;
}

bool AdmissionQueue::Idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depth_ == 0 && executing_ == 0;
}

double AdmissionQueue::backlog_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return backlog_ms_;
}

double AdmissionQueue::oldest_wait_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = std::chrono::steady_clock::now();
  double oldest = 0.0;
  for (const auto& [name, lane] : lanes_) {
    if (!lane.items.empty()) {
      oldest = std::max(oldest, MsSince(lane.items.front().enqueued, now));
    }
  }
  return oldest;
}

const char* PushResultToString(AdmissionQueue::PushResult result) {
  switch (result) {
    case AdmissionQueue::PushResult::kAdmitted:
      return "admitted";
    case AdmissionQueue::PushResult::kOverloadDepth:
      return "overload-depth";
    case AdmissionQueue::PushResult::kOverloadBacklog:
      return "overload-backlog";
    case AdmissionQueue::PushResult::kDraining:
      return "draining";
  }
  return "unknown";
}

}  // namespace hematch::serve
