#include "serve/service.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <utility>
#include <vector>

#include "api/fallback_matcher.h"
#include "core/astar_matcher.h"
#include "core/heuristic_advanced_matcher.h"
#include "core/heuristic_simple_matcher.h"
#include "exec/parallel_astar.h"
#include "exec/watchdog.h"

namespace hematch::serve {

namespace {

std::unique_ptr<FallbackMatcher> BuildLadder(const MatchRequestSpec& spec,
                                             int shed_level,
                                             const FallbackOptions& fopts) {
  ScorerOptions scorer;
  scorer.partial.unmapped_penalty = spec.partial_penalty;

  const bool heuristic_only = shed_level >= 1 || spec.method == "heuristic";
  if (!heuristic_only) {
    if (spec.method == "parallel") {
      // Multi-threaded exact rung; degrades through the same heuristic
      // pair as the sequential exact ladder when its budget trips.
      exec::ParallelAStarOptions popts;
      popts.scorer = scorer;
      popts.scorer.bound = BoundKind::kBitmapTight;
      popts.threads = spec.search_threads;
      std::vector<std::unique_ptr<Matcher>> ladder;
      ladder.push_back(std::make_unique<exec::ParallelAStarMatcher>(popts));
      HeuristicAdvancedOptions advanced;
      advanced.scorer = scorer;
      ladder.push_back(std::make_unique<HeuristicAdvancedMatcher>(advanced));
      HeuristicSimpleOptions simple;
      simple.scorer = scorer;
      ladder.push_back(std::make_unique<HeuristicSimpleMatcher>(simple));
      return std::make_unique<FallbackMatcher>(std::move(ladder), fopts);
    }
    AStarOptions astar;
    astar.scorer = scorer;
    return FallbackMatcher::ExactWithHeuristicFallbacks(astar, fopts);
  }

  std::vector<std::unique_ptr<Matcher>> ladder;
  if (shed_level < 2) {
    HeuristicAdvancedOptions advanced;
    advanced.scorer = scorer;
    ladder.push_back(std::make_unique<HeuristicAdvancedMatcher>(advanced));
  }
  HeuristicSimpleOptions simple;
  simple.scorer = scorer;
  ladder.push_back(std::make_unique<HeuristicSimpleMatcher>(simple));
  return std::make_unique<FallbackMatcher>(std::move(ladder), fopts);
}

}  // namespace

double EffectiveDeadlineMs(const MatchRequestSpec& spec,
                           const ServiceOptions& options) {
  double deadline = spec.deadline_ms > 0.0 ? spec.deadline_ms
                                           : options.default_deadline_ms;
  if (options.max_deadline_ms > 0.0) {
    deadline = std::min(deadline, options.max_deadline_ms);
  }
  return deadline;
}

MatchOutcome ExecuteMatch(WarmContext& warm, bool swapped,
                          const MatchRequestSpec& spec, int shed_level,
                          double queue_ms, bool context_warm,
                          const ServiceOptions& options,
                          exec::CancelToken& token,
                          obs::TraceRecorder* request_recorder) {
  MatchOutcome outcome;

  exec::RunBudget budget;
  budget.deadline_ms = EffectiveDeadlineMs(spec, options);
  budget.max_expansions = spec.max_expansions > 0
                              ? spec.max_expansions
                              : options.default_max_expansions;

  // Fresh governor per request: per-request budget state, and the
  // HEMATCH_FAULT_* drill (if any) re-arms for every request, so crash
  // drills exercise the isolation boundary request after request.
  exec::ExecutionGovernor governor;
  MatchingContext sibling(*warm.base, &governor);
  // Per-request sampling: the sibling (which dies with this call) gets
  // the recorder, and the ambient TLS slot routes shared-evaluator scan
  // events here without touching the evaluators' own pointer.
  std::unique_ptr<obs::AmbientTraceScope> ambient;
  if (request_recorder != nullptr) {
    sibling.set_local_trace_recorder(request_recorder);
    ambient = std::make_unique<obs::AmbientTraceScope>(request_recorder);
  }

  FallbackOptions fopts;
  fopts.budget = budget;
  fopts.cancel = &token;
  std::unique_ptr<FallbackMatcher> ladder =
      BuildLadder(spec, shed_level, fopts);

  // Backstop for non-polling stretches: past deadline + grace the token
  // trips, and the shared evaluators (holding the context's drain
  // token, not this one) are still bounded by the governor's strided
  // clock checks inside the matcher loops.
  exec::WatchdogOptions wopts;
  wopts.deadline_ms =
      budget.deadline_ms * options.watchdog_grace_factor + 5.0;
  wopts.token = &token;
  exec::Watchdog watchdog(std::move(wopts));

  Result<MatchResult> run = Status::Internal("match did not run");
  try {
    run = ladder->Match(sibling);
  } catch (const std::exception& e) {
    // The ladder isolates per-rung crashes; this boundary catches a
    // crash that escaped every rung (e.g. the last one). The request
    // fails alone — the process and its peers keep serving.
    outcome.error = Status::Internal(std::string("match crashed: ") +
                                     e.what());
    return outcome;
  } catch (...) {
    outcome.error = Status::Internal("match crashed: unknown exception");
    return outcome;
  }
  watchdog.Disarm();

  if (!run.ok()) {
    outcome.error = run.status();
    return outcome;
  }
  const MatchResult& result = run.value();

  MatchReplyData& reply = outcome.reply;
  reply.termination = exec::TerminationReasonToString(result.termination);
  reply.degraded = result.degraded();
  reply.shed_level = shed_level;
  reply.swapped = swapped;
  reply.context_warm = context_warm;
  reply.objective = result.objective;
  reply.lower_bound = result.lower_bound;
  reply.upper_bound = result.upper_bound;
  reply.bounds_certified = result.bounds_certified;
  reply.elapsed_ms = result.elapsed_ms;
  reply.queue_ms = queue_ms;
  reply.mappings_processed = result.mappings_processed;

  const EventDictionary& dict1 = warm.log1->dictionary();
  const EventDictionary& dict2 = warm.log2->dictionary();
  for (EventId s = 0; s < dict1.size(); ++s) {
    const EventId t = result.mapping.TargetOf(s);
    if (t == kInvalidEventId) {
      continue;
    }
    if (swapped) {
      // Report in the request's orientation: its log1 events first.
      reply.mapping.emplace_back(dict2.Name(t), dict1.Name(s));
    } else {
      reply.mapping.emplace_back(dict1.Name(s), dict2.Name(t));
    }
  }
  for (EventId s : result.unmapped_sources) {
    reply.unmapped.push_back(dict1.Name(s));
  }
  for (const StageAttempt& stage : result.stages) {
    reply.stages.emplace_back(
        stage.method, exec::TerminationReasonToString(stage.termination));
  }

  outcome.ok = true;
  return outcome;
}

}  // namespace hematch::serve
