#include "serve/registry.h"

#include <algorithm>
#include <utility>

#include "core/pattern_set.h"
#include "graph/dependency_graph.h"
#include "pattern/pattern_parser.h"
#include "serve/fingerprint.h"

namespace hematch::serve {

LogRegistry::LogRegistry(std::size_t max_logs) : max_logs_(max_logs) {}

Result<RegisteredLog> LogRegistry::Register(const std::string& name,
                                            EventLog log) {
  RegisteredLog entry;
  entry.name = name;
  entry.fingerprint = FingerprintLog(log);
  entry.fingerprint_hex = FingerprintHex(entry.fingerprint);
  entry.log = std::make_shared<const EventLog>(std::move(log));

  std::lock_guard<std::mutex> lock(mu_);
  auto existing = by_name_.find(name);
  if (existing != by_name_.end()) {
    if (existing->second.fingerprint == entry.fingerprint) {
      return existing->second;  // Idempotent re-registration.
    }
    return Status::InvalidArgument(
        "log name '" + name + "' already registered with different content (" +
        existing->second.fingerprint_hex + " vs " + entry.fingerprint_hex +
        ")");
  }
  if (by_name_.size() >= max_logs_) {
    return Status::ResourceExhausted(
        "log registry full (" + std::to_string(max_logs_) +
        " logs); re-use registered logs or raise --max-logs");
  }
  by_name_.emplace(name, entry);
  by_fp_.emplace(entry.fingerprint_hex, entry);
  return entry;
}

Result<RegisteredLog> LogRegistry::Lookup(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = by_name_.find(key); it != by_name_.end()) {
    return it->second;
  }
  if (auto it = by_fp_.find(key); it != by_fp_.end()) {
    return it->second;
  }
  return Status::NotFound("no registered log named '" + key + "'");
}

std::size_t LogRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_name_.size();
}

ContextRegistry::ContextRegistry(std::size_t max_contexts,
                                 obs::MetricsRegistry* metrics)
    : max_contexts_(std::max<std::size_t>(max_contexts, 1)),
      metrics_(metrics),
      hits_(metrics->GetCounter("serve.context_hits")),
      misses_(metrics->GetCounter("serve.context_misses")),
      evictions_(metrics->GetCounter("serve.context_evictions")) {}

Result<std::shared_ptr<WarmContext>> ContextRegistry::Acquire(
    const RegisteredLog& log1, const RegisteredLog& log2,
    const std::vector<std::string>& pattern_texts, bool* warm_hit) {
  const std::string key = log1.fingerprint_hex + "|" + log2.fingerprint_hex +
                          "|" +
                          FingerprintHex(FingerprintPatternTexts(pattern_texts));

  std::shared_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(key);
    if (it == slots_.end()) {
      it = slots_.emplace(key, std::make_shared<Slot>()).first;
      // Evict least-recently-used *built* slots over the cap. The new
      // slot is exempt (it is about to be built and used).
      while (slots_.size() > max_contexts_) {
        auto victim = slots_.end();
        for (auto cand = slots_.begin(); cand != slots_.end(); ++cand) {
          if (cand == it) {
            continue;
          }
          if (victim == slots_.end() ||
              cand->second->last_used < victim->second->last_used) {
            victim = cand;
          }
        }
        if (victim == slots_.end()) {
          break;
        }
        if (victim->second->context != nullptr) {
          evicted_.push_back(victim->second->context);
        }
        slots_.erase(victim);
        evictions_->Increment();
      }
      // Opportunistically drop expired weak refs so drain bookkeeping
      // does not grow without bound.
      evicted_.erase(std::remove_if(evicted_.begin(), evicted_.end(),
                                    [](const std::weak_ptr<WarmContext>& w) {
                                      return w.expired();
                                    }),
                     evicted_.end());
    }
    slot = it->second;
    slot->last_used = ++tick_;
  }

  std::lock_guard<std::mutex> build_lock(slot->build_mu);
  if (slot->context != nullptr) {
    hits_->Increment();
    if (warm_hit != nullptr) {
      *warm_hit = true;
    }
    return slot->context;
  }
  if (!slot->build_error.ok()) {
    // A previous build of this key failed (bad pattern text); replay
    // the error instead of rebuilding per request.
    return slot->build_error;
  }

  misses_->Increment();
  if (warm_hit != nullptr) {
    *warm_hit = false;
  }

  std::vector<Pattern> complex;
  complex.reserve(pattern_texts.size());
  for (const std::string& text : pattern_texts) {
    Result<Pattern> parsed = ParsePattern(text, log1.log->dictionary());
    if (!parsed.ok()) {
      slot->build_error = Status::InvalidArgument(
          "pattern '" + text + "': " + parsed.status().message());
      return slot->build_error;
    }
    complex.push_back(std::move(parsed).value());
  }

  auto warm = std::make_shared<WarmContext>();
  warm->log1 = log1.log;
  warm->log2 = log2.log;
  const DependencyGraph g1 = DependencyGraph::Build(*warm->log1);
  ContextTelemetryOptions telemetry;
  telemetry.shared_registry = metrics_;
  warm->base = std::make_unique<MatchingContext>(
      *warm->log1, *warm->log2, BuildPatternSet(g1, complex), telemetry);
  // Long scans in the shared evaluators poll this token; hard drain
  // flips it. Per-request budgets go through each sibling's governor,
  // never through the shared evaluators (cross-request cross-talk).
  warm->base->SetEvaluatorCancel(&warm->drain);
  {
    // Publish under both locks: Acquire reads `context` under build_mu,
    // CancelAll under the registry mutex.
    std::lock_guard<std::mutex> lock(mu_);
    slot->context = std::move(warm);
  }
  return slot->context;
}

void ContextRegistry::CancelAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, slot] : slots_) {
    // Skip slots mid-build (build_mu held): their evaluator token is
    // wired before first use, and builds finish on their own.
    if (slot->context != nullptr) {
      slot->context->drain.Cancel();
    }
  }
  for (auto& weak : evicted_) {
    if (auto alive = weak.lock()) {
      alive->drain.Cancel();
    }
  }
}

std::size_t ContextRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

}  // namespace hematch::serve
