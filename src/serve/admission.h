#ifndef HEMATCH_SERVE_ADMISSION_H_
#define HEMATCH_SERVE_ADMISSION_H_

/// \file
/// Admission control and fair-share scheduling for the match server.
///
/// The queue enforces two ceilings at enqueue time — a depth bound and
/// a backlog-milliseconds bound (the sum of queued requests' deadline
/// estimates, i.e. depth × deadline worth of promised work) — and
/// rejects loudly with a distinct overload verdict when either trips.
/// Rejection is the contract: a client always learns its request was
/// refused (`REJECTED_OVERLOAD` + retry hint), never a silent drop or
/// an unbounded wait.
///
/// Scheduling across tenants is stride-based fair share: each tenant
/// holds a FIFO of its own requests and a virtual "pass"; Pop serves
/// the non-empty tenant with the smallest pass and advances it, so a
/// tenant flooding the queue cannot starve a light one. A starvation
/// backstop overrides the stride pick when the globally oldest queued
/// item has aged past `aging_ms` — fairness never delays anyone
/// indefinitely.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace hematch::serve {

/// Admission-control limits; see ServerOptions for the serving context.
struct AdmissionOptions {
  /// Maximum queued (not yet executing) requests.
  std::size_t max_depth = 64;
  /// Ceiling on the deadline-mass of queued work, in milliseconds;
  /// 0 = only the depth bound applies.
  double max_backlog_ms = 0.0;
  /// A queued item older than this preempts the fair-share pick.
  /// Non-positive disables the backstop.
  double aging_ms = 500.0;
};

/// Bounded, tenant-fair, closable work queue.  Thread-safe.
class AdmissionQueue {
 public:
  /// One admitted request: scheduling metadata plus the closure the
  /// worker runs.
  struct Item {
    std::string tenant = "default";
    /// The request's effective deadline — its contribution to the
    /// backlog estimate.
    double deadline_ms = 0.0;
    std::chrono::steady_clock::time_point enqueued{};
    std::function<void()> work;
  };

  /// Why a Push was (not) admitted.
  enum class PushResult : std::uint8_t {
    kAdmitted = 0,
    kOverloadDepth,    ///< Depth bound hit.
    kOverloadBacklog,  ///< Backlog-milliseconds bound hit.
    kDraining,         ///< Queue closed; server is draining.
  };

  explicit AdmissionQueue(AdmissionOptions options);

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Stamps `item.enqueued` and admits or rejects it. Never blocks.
  PushResult Push(Item item);

  /// Blocks for the next item by fair-share order; std::nullopt once
  /// the queue is closed *and* empty (workers then exit). Closing does
  /// not discard queued items — drain executes every admitted request.
  /// A popped item counts as executing until the caller pairs it with
  /// MarkDone(), so Idle() can never observe the popped-but-not-yet-
  /// running window as "nothing left to do".
  std::optional<Item> Pop();

  /// Marks one previously popped item finished. Every successful Pop
  /// must be paired with exactly one MarkDone.
  void MarkDone();

  /// Stops admission (Push returns kDraining) and wakes blocked
  /// poppers. Idempotent.
  void Close();

  bool closed() const;
  std::size_t depth() const;
  /// Tenant lanes currently held — bounded by depth(), since a lane is
  /// erased as soon as its last item is popped.
  std::size_t lanes() const;
  /// Items popped but not yet MarkDone'd.
  std::size_t executing() const;
  /// True when nothing is queued *and* nothing popped is still running.
  /// Evaluated under one lock, so the depth/executing pair is a single
  /// consistent observation (no popped-item blind spot).
  bool Idle() const;
  /// Current deadline-mass of queued work.
  double backlog_ms() const;
  /// Milliseconds the oldest queued item has waited (0 when empty).
  double oldest_wait_ms() const;

 private:
  struct TenantLane {
    std::deque<Item> items;
    double pass = 0.0;  ///< Stride-scheduler virtual time.
  };

  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Only tenants with queued items: a lane is erased the moment its
  /// deque empties (re-admission re-seeds pass at the current minimum),
  /// so lanes_ is bounded by queue depth, not by every tenant string a
  /// client ever sent.
  std::map<std::string, TenantLane> lanes_;
  std::size_t depth_ = 0;
  std::size_t executing_ = 0;
  double backlog_ms_ = 0.0;
  bool closed_ = false;
};

const char* PushResultToString(AdmissionQueue::PushResult result);

}  // namespace hematch::serve

#endif  // HEMATCH_SERVE_ADMISSION_H_
