#ifndef HEMATCH_SERVE_SERVER_H_
#define HEMATCH_SERVE_SERVER_H_

/// \file
/// The long-lived match server (`hematch.serve.v1` over TCP).
///
/// Architecture: one accept thread (poll on the listen socket plus a
/// self-pipe for shutdown), one reader thread per connection parsing
/// newline-delimited requests, and a fixed worker pool executing match
/// requests popped from the tenant-fair `AdmissionQueue`. Cheap verbs
/// (ping, stats, register_log, drain) are answered on the session
/// thread; match requests go through admission control. Responses are
/// written under a per-session mutex, so pipelined requests on one
/// connection may complete out of order — the `id` field correlates.
///
/// Overload behavior (the robustness contract, docs/ROBUSTNESS.md):
///  * admission rejects with explicit `REJECTED_OVERLOAD` + retry hint
///    once queue depth or deadline-backlog exceeds capacity — never a
///    silent drop, never an unbounded queue;
///  * under saturation the scheduler sheds load by downgrading the
///    method ladder (exact → heuristic → simple-only) instead of
///    failing requests;
///  * every request runs under its own budget + watchdog, so worst-case
///    latency is deadline × grace, and a crashing strategy fails that
///    request alone (`INTERNAL`), not the process;
///  * `RequestDrain` (SIGTERM path) stops accepting, lets queued and
///    in-flight requests finish, then past `drain_grace_ms` cancels
///    stragglers — which budget out through the anytime path with
///    certified bounds. `Wait` returns once everything is joined; the
///    final telemetry snapshot remains readable.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "exec/budget.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "serve/access_log.h"
#include "serve/admission.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/service.h"
#include "serve/trace_ring.h"

namespace hematch::serve {

/// Everything one server enforces. Zeros mean "derive a sane default"
/// where documented.
struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 = ephemeral (read back via
  /// `port()`).
  int port = 0;
  /// Match-execution worker threads; <= 0 = hardware concurrency.
  int workers = 4;
  /// Admission: maximum queued match requests.
  std::size_t max_queue_depth = 64;
  /// Admission: ceiling on queued deadline-mass (ms); 0 = depth only.
  double max_backlog_ms = 0.0;
  /// Fair-share starvation backstop (see AdmissionOptions).
  double aging_ms = 500.0;
  /// Queue depth at which exact requests shed to the heuristic ladder;
  /// 0 = 2 × workers.
  std::size_t shed_depth = 0;
  /// Queue depth at which requests shed to simple-only; 0 = 4 × workers.
  std::size_t shed_hard_depth = 0;
  /// Per-request budgets and the watchdog grace factor.
  ServiceOptions service;
  /// LRU capacity of warm `MatchingContext`s.
  std::size_t max_contexts = 8;
  /// Registered-log capacity.
  std::size_t max_logs = 64;
  /// Concurrent connections; excess connects are turned away with an
  /// explicit overload error.
  int max_connections = 128;
  /// Bound on how long a response write may block on a client that has
  /// stopped reading (SO_SNDTIMEO plus an overall per-response
  /// deadline). On expiry the client is treated as dead: the session is
  /// closed and the response dropped, so one stalled reader can never
  /// wedge a worker (or, through the per-session write mutex, the whole
  /// pool). Non-positive disables the bound.
  double send_timeout_ms = 5000.0;
  /// Maximum bytes a single request line may occupy before a newline
  /// arrives. Sized for register_log payloads (a JSON-escaped whole
  /// log); a client exceeding it gets BAD_REQUEST and the connection is
  /// closed, since framing is unrecoverable. 0 disables the cap.
  std::size_t max_request_bytes = 64u << 20;
  /// Drain: how long in-flight/queued work may keep running after
  /// `RequestDrain` before stragglers are cancelled (budgeted out).
  double drain_grace_ms = 5000.0;
  /// Metrics registry enabled/disabled.
  bool telemetry = true;
  /// Optional span recorder for `serve.session` / `serve.request`
  /// timelines (request spans are parented to their session across
  /// worker threads). Must outlive the server.
  obs::TraceRecorder* trace_recorder = nullptr;

  // --- Request-scoped observability (docs/OBSERVABILITY.md).

  /// Directory for the per-request trace ring; empty = per-request
  /// tracing off (the knobs below are then inert).
  std::string trace_dir;
  /// Probability in [0, 1] that a match request's trace is kept.
  /// Deterministic in the request id, so a given load is reproducible.
  double trace_sample_rate = 0.0;
  /// Requests slower than this (parse-to-response total) are captured
  /// regardless of the sample rate; <= 0 disables the latency trigger.
  /// Failed and non-"completed" runs (overload degradation, crashes)
  /// are always captured.
  double trace_slow_ms = 0.0;
  /// Bound on trace files kept in the ring (oldest evicted first).
  int trace_ring_files = 64;
  /// Structured access log (`hematch.access.v1` JSONL); empty = off.
  std::string access_log_path;
  /// Access log rotates to `.1` past this size; <= 0 = no rotation.
  std::int64_t access_log_max_bytes = 8 << 20;
  /// Plaintext Prometheus endpoint on 127.0.0.1: 0 = ephemeral (read
  /// back via `metrics_port()`), < 0 = no endpoint.
  int metrics_port = -1;
};

class MatchServer {
 public:
  explicit MatchServer(ServerOptions options);
  ~MatchServer();

  MatchServer(const MatchServer&) = delete;
  MatchServer& operator=(const MatchServer&) = delete;

  /// Binds, listens, and spawns the accept thread and worker pool.
  Status Start();

  /// The bound port (after Start; meaningful with options.port == 0).
  int port() const { return port_; }

  /// The bound metrics-endpoint port (after Start; -1 when disabled).
  int metrics_port() const { return metrics_port_; }

  /// Begins graceful drain: stop accepting connections and admissions,
  /// finish (or, past the grace, budget out) everything already
  /// admitted. Idempotent; callable from any thread, including a
  /// session thread handling the `drain` op.
  void RequestDrain();

  /// Blocks until the server has fully drained and every thread is
  /// joined. Requires a prior (or concurrent) RequestDrain — a server
  /// nobody drains serves forever, which is the point.
  void Wait();

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// Current metric values (also valid after Wait — the final
  /// snapshot).
  obs::TelemetrySnapshot SnapshotTelemetry() const;

  /// Trailing-60s view: windowed counters, latency/queue histograms,
  /// and derived `serve.goodput_rps` / `serve.shed_rate` gauges. Keys
  /// match their cumulative counterparts; consumers suffix `_w60`.
  obs::TelemetrySnapshot WindowedSnapshot() const;

  /// Prometheus text exposition of the cumulative + windowed metrics —
  /// what the `--metrics-port` endpoint and the `metrics` op serve.
  std::string PrometheusText() const;

  /// Queue depth + executing requests, for tests and the drain reply.
  std::size_t in_flight() const {
    return in_flight_.load(std::memory_order_acquire);
  }

 private:
  struct Session {
    int fd = -1;
    std::mutex write_mu;
    std::atomic<bool> open{true};
    std::thread thread;
    obs::SpanId span_id = 0;  ///< serve.session span, parent of requests.
  };

  void AcceptLoop();
  void WorkerLoop();
  void SessionLoop(const std::shared_ptr<Session>& session);
  void HandleLine(const std::shared_ptr<Session>& session,
                  const std::string& line);
  void HandleRegisterLog(const std::shared_ptr<Session>& session,
                         const ServeRequest& req, const RequestContext& ctx,
                         std::size_t bytes_in);
  void HandleMatch(const std::shared_ptr<Session>& session, ServeRequest req,
                   const RequestContext& ctx, std::size_t bytes_in);
  void RunMatch(const std::shared_ptr<Session>& session,
                const ServeRequest& req, const RequestContext& ctx,
                std::size_t bytes_in,
                std::chrono::steady_clock::time_point enqueued);
  /// Returns the bytes actually written (0 when the client is gone).
  std::size_t Send(Session& session, const std::string& line);
  std::size_t SendError(const std::shared_ptr<Session>& session,
                        std::uint64_t id, RequestOp op, const Status& status,
                        const RequestContext& ctx = {});
  void DrainCoordinator();
  int CurrentShedLevel();
  void UpdateQueueGauges();

  /// Stamps `ts_ms` and appends to the access log (no-op when off).
  void LogAccess(AccessLogEntry entry);
  /// Deterministic sampling verdict for `request_id` at
  /// `options_.trace_sample_rate`.
  bool SampledByRate(std::uint64_t request_id) const;
  Status StartMetricsEndpoint();
  void MetricsLoop();
  void ServeMetricsConnection(int fd);

  ServerOptions options_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  LogRegistry logs_;
  ContextRegistry contexts_;
  AdmissionQueue queue_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int port_ = 0;
  std::chrono::steady_clock::time_point started_{};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex sessions_mu_;
  std::vector<std::shared_ptr<Session>> sessions_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> drain_hard_{false};
  std::atomic<bool> stopped_{false};
  std::chrono::steady_clock::time_point drain_started_{};
  std::thread drain_thread_;

  std::atomic<std::size_t> in_flight_{0};
  std::mutex tokens_mu_;
  std::set<exec::CancelToken*> active_tokens_;

  // serve.* metric handles (resolved once in the constructor).
  obs::Counter* accepted_;
  obs::Counter* rejected_overload_;
  obs::Counter* rejected_draining_;
  obs::Counter* bad_requests_;
  obs::Counter* not_found_;
  obs::Counter* completed_;
  obs::Counter* failed_;
  obs::Counter* cancelled_drain_;
  obs::Counter* shed_soft_;
  obs::Counter* shed_hard_;
  obs::Counter* connections_;
  obs::Counter* connections_rejected_;
  obs::Gauge* queue_depth_gauge_;
  obs::Gauge* backlog_gauge_;
  obs::Gauge* in_flight_gauge_;
  obs::Gauge* draining_gauge_;
  obs::Gauge* drain_ms_gauge_;
  obs::Histogram* queue_wait_ms_;
  obs::Histogram* latency_ms_;

  // Request-scoped observability.
  std::atomic<std::uint64_t> next_request_id_{1};
  std::unique_ptr<AccessLog> access_log_;
  std::unique_ptr<TraceRing> trace_ring_;

  // Trailing-window twins of the key cumulative metrics.
  obs::WindowedCounter win_matches_;    ///< Match requests resolved.
  obs::WindowedCounter win_completed_;
  obs::WindowedCounter win_failed_;
  obs::WindowedCounter win_rejected_overload_;
  obs::WindowedCounter win_shed_;       ///< Requests run at shed > 0.
  obs::WindowedHistogram win_queue_wait_ms_;
  obs::WindowedHistogram win_latency_ms_;

  // Prometheus scrape endpoint (own thread + wake pipe).
  int metrics_fd_ = -1;
  int metrics_wake_[2] = {-1, -1};
  int metrics_port_ = -1;
  std::thread metrics_thread_;
};

}  // namespace hematch::serve

#endif  // HEMATCH_SERVE_SERVER_H_
