#ifndef HEMATCH_SERVE_SERVICE_H_
#define HEMATCH_SERVE_SERVICE_H_

/// \file
/// One match request, executed: budgets, shedding, isolation.
///
/// `ExecuteMatch` is the seam between the server plumbing and the
/// matching library. Each call gets a *fresh* `ExecutionGovernor`
/// (picking up any `HEMATCH_FAULT_*` drill from the environment) bound
/// to a sibling of the warm base context, a `RunBudget` clamped to the
/// server's ceilings, a caller-owned `CancelToken`, and a `Watchdog`
/// backstop slightly past the deadline — so a request that is slow,
/// stuck, or crashing resolves to an anytime result with certified
/// bounds (or an INTERNAL error) without ever threatening the process
/// or other in-flight requests.

#include <cstdint>

#include "common/status.h"
#include "exec/budget.h"
#include "obs/trace.h"
#include "serve/protocol.h"
#include "serve/registry.h"

namespace hematch::serve {

/// Per-request execution policy (a slice of ServerOptions).
struct ServiceOptions {
  /// Used when the request does not name a deadline.
  double default_deadline_ms = 1000.0;
  /// Hard ceiling on any request's deadline.
  double max_deadline_ms = 30000.0;
  /// Expansion cap applied when the request does not name one;
  /// 0 = unlimited.
  std::uint64_t default_max_expansions = 0;
  /// The watchdog fires at `deadline * grace_factor + 5ms` — the grace
  /// that bounds p99 for non-polling stretches (docs/ROBUSTNESS.md).
  double watchdog_grace_factor = 1.05;
};

/// What one execution produced: a reply payload, or the error the
/// server should translate into an error response.
struct MatchOutcome {
  bool ok = false;
  Status error = Status::OK();  ///< Set when !ok.
  MatchReplyData reply;         ///< Set when ok.
};

/// Runs `spec` against `warm` (already oriented: |V1| <= |V2| unless
/// partial mappings are on; `swapped` says whether orientation flipped
/// the request's log order). `shed_level` degrades the ladder under
/// saturation: 0 = exact→advanced→simple, 1 = advanced→simple,
/// 2 = simple only. `token` is the request's cancel token — the server
/// owns it, registers it for drain, and this function wires it into
/// the governor and watchdog.
///
/// `request_recorder`, when non-null, captures this request's matcher
/// and frequency spans: it is installed on the sibling context only
/// (never the shared evaluators) and as the worker thread's ambient
/// recorder for the duration of the run, so concurrent requests'
/// timelines never cross-wire.
MatchOutcome ExecuteMatch(WarmContext& warm, bool swapped,
                          const MatchRequestSpec& spec, int shed_level,
                          double queue_ms, bool context_warm,
                          const ServiceOptions& options,
                          exec::CancelToken& token,
                          obs::TraceRecorder* request_recorder = nullptr);

/// The deadline `ExecuteMatch` will run `spec` under (request value
/// clamped to the ceiling, default when absent). The admission queue
/// uses the same number for its backlog estimate.
double EffectiveDeadlineMs(const MatchRequestSpec& spec,
                           const ServiceOptions& options);

}  // namespace hematch::serve

#endif  // HEMATCH_SERVE_SERVICE_H_
