#include "serve/trace_ring.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <vector>

namespace hematch::serve {

namespace fs = std::filesystem;

TraceRing::TraceRing(std::string dir, int max_files)
    : dir_(std::move(dir)), max_files_(max_files) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  ok_ = fs::is_directory(dir_, ec);
  if (!ok_) {
    return;
  }
  // Adopt traces from a previous incarnation; zero-padded names make
  // lexicographic order chronological.
  std::vector<std::string> existing;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("req-", 0) == 0 && name.size() > 9 &&
        name.compare(name.size() - 5, 5, ".json") == 0) {
      existing.push_back(entry.path().string());
    }
  }
  std::sort(existing.begin(), existing.end());
  files_.assign(existing.begin(), existing.end());
}

std::string TraceRing::PathFor(std::uint64_t request_id) const {
  std::string digits = std::to_string(request_id);
  if (digits.size() < 20) {
    digits.insert(0, 20 - digits.size(), '0');
  }
  return dir_ + "/req-" + digits + ".json";
}

Result<std::string> TraceRing::WriteRequestTrace(
    std::uint64_t request_id, const obs::TraceRecorder& recorder) {
  if (!ok_) {
    return Status::InvalidArgument("trace ring directory unavailable: " +
                                   dir_);
  }
  const std::string path = PathFor(request_id);
  HEMATCH_RETURN_IF_ERROR(recorder.WriteChromeJson(path));
  std::lock_guard<std::mutex> lock(mu_);
  files_.push_back(path);
  while (max_files_ > 0 &&
         files_.size() > static_cast<std::size_t>(max_files_)) {
    std::remove(files_.front().c_str());
    files_.pop_front();
  }
  return path;
}

std::size_t TraceRing::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.size();
}

}  // namespace hematch::serve
