#ifndef HEMATCH_SERVE_TRACE_RING_H_
#define HEMATCH_SERVE_TRACE_RING_H_

/// \file
/// A bounded on-disk ring of per-request trace files. Each sampled
/// request's `TraceRecorder` is serialized to
/// `<dir>/req-<zero-padded id>.json`; once the directory holds
/// `max_files` traces the oldest is deleted before the next is written,
/// so sampling every slow request can never fill the disk. Ids are
/// zero-padded so lexicographic order is chronological order — the ring
/// survives a server restart by rescanning the directory.

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "common/result.h"
#include "obs/trace.h"

namespace hematch::serve {

class TraceRing {
 public:
  /// Creates `dir` if needed and adopts any `req-*.json` files already
  /// there (oldest evicted first). `max_files <= 0` means unbounded.
  TraceRing(std::string dir, int max_files);

  /// True when the directory exists (or was created).
  bool ok() const { return ok_; }
  const std::string& dir() const { return dir_; }

  /// The path a given request's trace would be written to.
  std::string PathFor(std::uint64_t request_id) const;

  /// Serializes `recorder` to `PathFor(request_id)`, evicting the
  /// oldest trace first when the ring is full. Returns the path.
  Result<std::string> WriteRequestTrace(std::uint64_t request_id,
                                        const obs::TraceRecorder& recorder);

  /// Trace files currently tracked (after the startup scan + writes).
  std::size_t size() const;

 private:
  std::string dir_;
  int max_files_;
  bool ok_ = false;
  mutable std::mutex mu_;
  std::deque<std::string> files_;  ///< Paths, oldest first.
};

}  // namespace hematch::serve

#endif  // HEMATCH_SERVE_TRACE_RING_H_
