#include "serve/server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <thread>
#include <utility>

#include "log/log_io.h"
#include "obs/prometheus.h"

namespace hematch::serve {

namespace {

double MsSince(std::chrono::steady_clock::time_point then) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - then)
      .count();
}

/// Latency buckets sized for millisecond-scale request deadlines.
std::vector<double> LatencyBounds() {
  return {1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000};
}

ErrorCode ErrorCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kUnimplemented:
      return ErrorCode::kBadRequest;
    case StatusCode::kNotFound:
      return ErrorCode::kNotFound;
    case StatusCode::kResourceExhausted:
      return ErrorCode::kRejectedOverload;
    default:
      return ErrorCode::kInternal;
  }
}

/// splitmix64 finalizer → uniform double in [0, 1). Deterministic in
/// the request id, so "sample 25% of requests" picks the same requests
/// on every identical run — reproducible and testable.
double UniformFromId(std::uint64_t id) {
  std::uint64_t z = id + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

}  // namespace

MatchServer::MatchServer(ServerOptions options)
    : options_(std::move(options)),
      metrics_(std::make_unique<obs::MetricsRegistry>(options_.telemetry)),
      logs_(options_.max_logs),
      contexts_(options_.max_contexts, metrics_.get()),
      queue_(AdmissionOptions{options_.max_queue_depth,
                              options_.max_backlog_ms, options_.aging_ms}),
      accepted_(metrics_->GetCounter("serve.accepted")),
      rejected_overload_(metrics_->GetCounter("serve.rejected_overload")),
      rejected_draining_(metrics_->GetCounter("serve.rejected_draining")),
      bad_requests_(metrics_->GetCounter("serve.bad_requests")),
      not_found_(metrics_->GetCounter("serve.not_found")),
      completed_(metrics_->GetCounter("serve.completed")),
      failed_(metrics_->GetCounter("serve.failed")),
      cancelled_drain_(metrics_->GetCounter("serve.cancelled_by_drain")),
      shed_soft_(metrics_->GetCounter("serve.shed_soft")),
      shed_hard_(metrics_->GetCounter("serve.shed_hard")),
      connections_(metrics_->GetCounter("serve.connections")),
      connections_rejected_(
          metrics_->GetCounter("serve.connections_rejected")),
      queue_depth_gauge_(metrics_->GetGauge("serve.queue_depth")),
      backlog_gauge_(metrics_->GetGauge("serve.backlog_ms")),
      in_flight_gauge_(metrics_->GetGauge("serve.in_flight")),
      draining_gauge_(metrics_->GetGauge("serve.draining")),
      drain_ms_gauge_(metrics_->GetGauge("serve.drain_ms")),
      queue_wait_ms_(
          metrics_->GetHistogram("serve.queue_wait_ms", LatencyBounds())),
      latency_ms_(metrics_->GetHistogram("serve.latency_ms", LatencyBounds())),
      win_queue_wait_ms_(LatencyBounds()),
      win_latency_ms_(LatencyBounds()) {
  options_.trace_sample_rate =
      std::min(1.0, std::max(0.0, options_.trace_sample_rate));
  if (!options_.access_log_path.empty()) {
    access_log_ = std::make_unique<AccessLog>(options_.access_log_path,
                                              options_.access_log_max_bytes);
  }
  if (!options_.trace_dir.empty()) {
    trace_ring_ = std::make_unique<TraceRing>(options_.trace_dir,
                                              options_.trace_ring_files);
  }
  if (options_.workers <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    options_.workers = hw > 0 ? static_cast<int>(hw) : 2;
  }
  if (options_.shed_depth == 0) {
    options_.shed_depth = static_cast<std::size_t>(options_.workers) * 2;
  }
  if (options_.shed_hard_depth == 0) {
    options_.shed_hard_depth = static_cast<std::size_t>(options_.workers) * 4;
  }
}

MatchServer::~MatchServer() {
  if (!stopped_.load(std::memory_order_acquire) && listen_fd_ >= 0) {
    RequestDrain();
    Wait();
  }
}

Status MatchServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal("socket() failed: " +
                            std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind() failed: " +
                            std::string(std::strerror(errno)));
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen() failed: " +
                            std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  if (::pipe(wake_pipe_) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("pipe() failed: " +
                            std::string(std::strerror(errno)));
  }

  if (options_.metrics_port >= 0) {
    const Status metrics_status = StartMetricsEndpoint();
    if (!metrics_status.ok()) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      for (int i = 0; i < 2; ++i) {
        if (wake_pipe_[i] >= 0) {
          ::close(wake_pipe_[i]);
          wake_pipe_[i] = -1;
        }
      }
      return metrics_status;
    }
  }

  started_ = std::chrono::steady_clock::now();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void MatchServer::AcceptLoop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if ((fds[1].revents & POLLIN) != 0 ||
        draining_.load(std::memory_order_acquire)) {
      break;  // Drain: stop accepting.
    }
    if ((fds[0].revents & POLLIN) == 0) {
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    std::size_t live = 0;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      // Reap finished sessions so the connection cap tracks live ones.
      // A session with open == false is on (or past) its exit path, so
      // the join below is brief.
      for (auto& s : sessions_) {
        if (!s->open.load(std::memory_order_acquire) && s->thread.joinable()) {
          s->thread.join();
        }
      }
      sessions_.erase(
          std::remove_if(sessions_.begin(), sessions_.end(),
                         [](const std::shared_ptr<Session>& s) {
                           return !s->open.load(std::memory_order_acquire) &&
                                  !s->thread.joinable();
                         }),
          sessions_.end());
      for (const auto& s : sessions_) {
        if (s->open.load(std::memory_order_acquire)) {
          ++live;
        }
      }
    }
    if (live >= static_cast<std::size_t>(options_.max_connections)) {
      connections_rejected_->Increment();
      const std::string line =
          BuildErrorResponse(0, RequestOp::kPing, ErrorCode::kRejectedOverload,
                             "too many connections") +
          "\n";
      (void)::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    connections_->Increment();
    if (options_.send_timeout_ms > 0.0) {
      // A client that stops reading must time a worker out of send, not
      // block it forever while it holds the session write mutex.
      timeval tv{};
      tv.tv_sec = static_cast<time_t>(options_.send_timeout_ms / 1000.0);
      tv.tv_usec = static_cast<suseconds_t>(
          std::fmod(options_.send_timeout_ms, 1000.0) * 1000.0);
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    auto session = std::make_shared<Session>();
    session->fd = fd;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions_.push_back(session);
    }
    session->thread = std::thread([this, session] { SessionLoop(session); });
  }
}

void MatchServer::SessionLoop(const std::shared_ptr<Session>& session) {
  obs::ScopedSpan span(options_.trace_recorder, "serve.session", "serve");
  session->span_id = span.id();
  std::string buffer;
  char chunk[4096];
  std::uint64_t lines = 0;
  while (session->open.load(std::memory_order_acquire)) {
    const ssize_t n = ::recv(session->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      break;  // EOF, error, or shutdown() from Wait.
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) {
        break;
      }
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      if (!line.empty()) {
        ++lines;
        HandleLine(session, line);
      }
    }
    buffer.erase(0, start);
    if (options_.max_request_bytes > 0 &&
        buffer.size() > options_.max_request_bytes) {
      // A line this long without a newline is a broken or hostile
      // client; reject and hang up — framing past this point is
      // unrecoverable, and the buffer must stay bounded.
      bad_requests_->Increment();
      Send(*session,
           BuildErrorResponse(0, RequestOp::kPing, ErrorCode::kBadRequest,
                              "request line exceeds max_request_bytes"));
      break;
    }
  }
  session->open.store(false, std::memory_order_release);
  {
    // Close under the write lock: a worker mid-Send finishes first, and
    // no Send can ever touch a reused descriptor number.
    std::lock_guard<std::mutex> lock(session->write_mu);
    ::close(session->fd);
    session->fd = -1;
  }
  span.AddArg("requests", static_cast<double>(lines));
}

std::size_t MatchServer::Send(Session& session, const std::string& line) {
  std::lock_guard<std::mutex> lock(session.write_mu);
  if (!session.open.load(std::memory_order_acquire) || session.fd < 0) {
    return 0;  // Client went away; the work was still accounted.
  }
  std::string out = line;
  out += '\n';
  // SO_SNDTIMEO bounds each ::send; the overall deadline bounds a
  // client trickle-reading one byte per timeout, so a response write
  // can never hold write_mu for more than ~2× send_timeout_ms.
  const bool bounded = options_.send_timeout_ms > 0.0;
  const auto give_up =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(options_.send_timeout_ms));
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n = ::send(session.fd, out.data() + sent, out.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;  // Error, or SO_SNDTIMEO expired (EAGAIN): dead client.
    }
    sent += static_cast<std::size_t>(n);
    if (bounded && std::chrono::steady_clock::now() >= give_up) {
      break;
    }
  }
  if (sent < out.size()) {
    // Treat the stalled/broken client as gone: drop the response, and
    // shutdown() so the session's blocked recv unblocks and the reader
    // thread exits (it owns the close).
    session.open.store(false, std::memory_order_release);
    ::shutdown(session.fd, SHUT_RDWR);
  }
  return sent;
}

std::size_t MatchServer::SendError(const std::shared_ptr<Session>& session,
                                   std::uint64_t id, RequestOp op,
                                   const Status& status,
                                   const RequestContext& ctx) {
  const ErrorCode code = ErrorCodeForStatus(status);
  if (code == ErrorCode::kNotFound) {
    not_found_->Increment();
  } else if (code == ErrorCode::kBadRequest) {
    bad_requests_->Increment();
  }
  return Send(*session, BuildErrorResponse(id, op, code, status.message(),
                                           /*retry_after_ms=*/0.0, ctx));
}

void MatchServer::HandleLine(const std::shared_ptr<Session>& session,
                             const std::string& line) {
  const auto received = std::chrono::steady_clock::now();
  Result<ServeRequest> parsed = ParseRequest(line);
  if (!parsed.ok()) {
    bad_requests_->Increment();
    const std::size_t bytes_out =
        Send(*session,
             BuildErrorResponse(0, RequestOp::kPing, ErrorCode::kBadRequest,
                                parsed.status().message()));
    AccessLogEntry entry;
    entry.op = "invalid";
    entry.error_code = ErrorCodeToString(ErrorCode::kBadRequest);
    entry.bytes_in = line.size();
    entry.bytes_out = bytes_out;
    entry.total_ms = MsSince(received);
    LogAccess(std::move(entry));
    return;
  }
  ServeRequest req = std::move(parsed).value();
  RequestContext ctx;
  ctx.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  ctx.correlation_id = req.correlation_id;

  // Inline ops: answered on the session thread, logged as such.
  auto log_inline = [&](const char* op, std::size_t bytes_out) {
    AccessLogEntry entry;
    entry.request_id = ctx.request_id;
    entry.correlation_id = ctx.correlation_id;
    entry.op = op;
    entry.ok = true;
    entry.bytes_in = line.size();
    entry.bytes_out = bytes_out;
    entry.total_ms = MsSince(received);
    LogAccess(std::move(entry));
  };

  switch (req.op) {
    case RequestOp::kPing:
      log_inline("ping", Send(*session, BuildPingResponse(req.id, ctx)));
      return;
    case RequestOp::kStats: {
      const obs::TelemetrySnapshot windowed = WindowedSnapshot();
      log_inline("stats",
                 Send(*session,
                      BuildStatsResponse(req.id, SnapshotTelemetry(),
                                         MsSince(started_), ctx, &windowed)));
      return;
    }
    case RequestOp::kMetrics:
      log_inline("metrics",
                 Send(*session,
                      BuildMetricsResponse(req.id, PrometheusText(), ctx)));
      return;
    case RequestOp::kDrain:
      RequestDrain();
      log_inline("drain",
                 Send(*session, BuildDrainResponse(req.id, in_flight_.load(),
                                                   queue_.depth(), ctx)));
      return;
    case RequestOp::kRegisterLog:
      HandleRegisterLog(session, req, ctx, line.size());
      return;
    case RequestOp::kMatch:
      HandleMatch(session, std::move(req), ctx, line.size());
      return;
  }
}

void MatchServer::HandleRegisterLog(const std::shared_ptr<Session>& session,
                                    const ServeRequest& req,
                                    const RequestContext& ctx,
                                    std::size_t bytes_in) {
  const auto received = std::chrono::steady_clock::now();
  AccessLogEntry access;
  access.request_id = ctx.request_id;
  access.correlation_id = ctx.correlation_id;
  access.op = "register_log";
  access.bytes_in = bytes_in;
  auto log_failure = [&](const Status& status, std::size_t bytes_out) {
    access.error_code = ErrorCodeToString(ErrorCodeForStatus(status));
    access.bytes_out = bytes_out;
    access.total_ms = MsSince(received);
    LogAccess(std::move(access));
  };

  if (draining_.load(std::memory_order_acquire)) {
    rejected_draining_->Increment();
    const std::size_t bytes_out =
        Send(*session, BuildErrorResponse(req.id, RequestOp::kRegisterLog,
                                          ErrorCode::kRejectedDraining,
                                          "server is draining",
                                          /*retry_after_ms=*/0.0, ctx));
    access.error_code = ErrorCodeToString(ErrorCode::kRejectedDraining);
    access.admission = "draining";
    access.bytes_out = bytes_out;
    access.total_ms = MsSince(received);
    LogAccess(std::move(access));
    return;
  }
  std::istringstream input(req.register_log.content);
  Result<EventLog> log = req.register_log.format == "csv"
                             ? ReadCsvLog(input)
                             : ReadTraceLog(input);
  if (!log.ok()) {
    log_failure(log.status(), SendError(session, req.id,
                                        RequestOp::kRegisterLog, log.status(),
                                        ctx));
    return;
  }
  if (log->empty() || log->num_events() == 0) {
    const Status status =
        Status::InvalidArgument("log has no traces/events");
    log_failure(status, SendError(session, req.id, RequestOp::kRegisterLog,
                                  status, ctx));
    return;
  }
  Result<RegisteredLog> entry =
      logs_.Register(req.register_log.name, std::move(log).value());
  if (!entry.ok()) {
    if (entry.status().code() == StatusCode::kResourceExhausted) {
      rejected_overload_->Increment();
    }
    log_failure(entry.status(),
                SendError(session, req.id, RequestOp::kRegisterLog,
                          entry.status(), ctx));
    return;
  }
  access.ok = true;
  access.bytes_out = Send(
      *session,
      BuildRegisterLogResponse(req.id, entry->name, entry->fingerprint_hex,
                               entry->log->num_traces(),
                               entry->log->num_events(), ctx));
  access.total_ms = MsSince(received);
  LogAccess(std::move(access));
}

void MatchServer::UpdateQueueGauges() {
  queue_depth_gauge_->Set(static_cast<double>(queue_.depth()));
  backlog_gauge_->Set(queue_.backlog_ms());
}

void MatchServer::HandleMatch(const std::shared_ptr<Session>& session,
                              ServeRequest req, const RequestContext& ctx,
                              std::size_t bytes_in) {
  const std::uint64_t id = req.id;
  const double deadline_ms = EffectiveDeadlineMs(req.match, options_.service);

  AccessLogEntry access;
  access.request_id = ctx.request_id;
  access.correlation_id = ctx.correlation_id;
  access.op = "match";
  access.tenant = req.match.tenant;
  access.method = req.match.method;
  access.bytes_in = bytes_in;

  AdmissionQueue::Item item;
  item.tenant = req.match.tenant;
  item.deadline_ms = deadline_ms;
  // The closure owns the request and a shared_ptr to the session, so a
  // connection closing while the item waits in the queue cannot dangle.
  const auto enqueued = std::chrono::steady_clock::now();
  auto owned = std::make_shared<ServeRequest>(std::move(req));
  item.work = [this, session, owned, ctx, bytes_in, enqueued] {
    RunMatch(session, *owned, ctx, bytes_in, enqueued);
  };

  const AdmissionQueue::PushResult verdict = queue_.Push(std::move(item));
  UpdateQueueGauges();
  switch (verdict) {
    case AdmissionQueue::PushResult::kAdmitted:
      accepted_->Increment();
      // The admitted request's access entry is written by RunMatch.
      return;
    case AdmissionQueue::PushResult::kOverloadDepth:
    case AdmissionQueue::PushResult::kOverloadBacklog: {
      rejected_overload_->Increment();
      win_rejected_overload_.Add(1);
      // Retry hint: roughly one queue's worth of work per worker, and
      // never less than one request deadline.
      const double retry_ms = std::max(
          deadline_ms,
          queue_.backlog_ms() / std::max(options_.workers, 1));
      access.admission =
          verdict == AdmissionQueue::PushResult::kOverloadDepth
              ? "rejected_depth"
              : "rejected_backlog";
      access.error_code = ErrorCodeToString(ErrorCode::kRejectedOverload);
      access.bytes_out = Send(
          *session,
          BuildErrorResponse(id, RequestOp::kMatch,
                             ErrorCode::kRejectedOverload,
                             std::string("admission rejected: ") +
                                 PushResultToString(verdict),
                             retry_ms, ctx));
      access.total_ms = MsSince(enqueued);
      LogAccess(std::move(access));
      return;
    }
    case AdmissionQueue::PushResult::kDraining:
      rejected_draining_->Increment();
      access.admission = "draining";
      access.error_code = ErrorCodeToString(ErrorCode::kRejectedDraining);
      access.bytes_out =
          Send(*session,
               BuildErrorResponse(id, RequestOp::kMatch,
                                  ErrorCode::kRejectedDraining,
                                  "server is draining",
                                  /*retry_after_ms=*/0.0, ctx));
      access.total_ms = MsSince(enqueued);
      LogAccess(std::move(access));
      return;
  }
}

int MatchServer::CurrentShedLevel() {
  const std::size_t depth = queue_.depth();
  if (depth >= options_.shed_hard_depth) {
    return 2;
  }
  if (depth >= options_.shed_depth) {
    return 1;
  }
  return 0;
}

void MatchServer::RunMatch(const std::shared_ptr<Session>& session,
                           const ServeRequest& req, const RequestContext& ctx,
                           std::size_t bytes_in,
                           std::chrono::steady_clock::time_point enqueued) {
  const double queue_ms = MsSince(enqueued);
  queue_wait_ms_->Observe(queue_ms);
  win_queue_wait_ms_.Observe(queue_ms);
  const MatchRequestSpec& spec = req.match;

  AccessLogEntry access;
  access.request_id = ctx.request_id;
  access.correlation_id = ctx.correlation_id;
  access.op = "match";
  access.tenant = spec.tenant;
  access.method = spec.method;
  access.admission = "admitted";
  access.queue_ms = queue_ms;
  access.bytes_in = bytes_in;

  // Per-request recorder: a private, small-buffered timeline holding
  // this request's spans only. The decision to *keep* it comes after
  // the run (sampling and force-capture need the outcome); recording
  // unconditionally costs little next to an actual match.
  std::unique_ptr<obs::TraceRecorder> req_recorder;
  std::unique_ptr<obs::ScopedSpan> req_root;
  if (trace_ring_ != nullptr && trace_ring_->ok()) {
    obs::TraceRecorderOptions topts;
    topts.per_thread_capacity = 4096;
    req_recorder = std::make_unique<obs::TraceRecorder>(topts);
    req_root = std::make_unique<obs::ScopedSpan>(req_recorder.get(),
                                                 "serve.request", "serve");
    req_root->AddArg("request_id", static_cast<double>(ctx.request_id));
    req_root->AddArg("queue_ms", queue_ms);
  }

  // Request span, explicitly parented to its session's span even though
  // it runs on a worker thread.
  obs::ScopedSpan span(options_.trace_recorder, "serve.request", "serve",
                       session->span_id != 0 ? session->span_id
                                             : obs::kAutoParent);
  span.AddArg("request_id", static_cast<double>(ctx.request_id));
  span.AddArg("queue_ms", queue_ms);

  bool ok = false;
  int shed_level = 0;
  Status error = Status::OK();
  MatchOutcome outcome;
  do {
    Result<RegisteredLog> r1 = logs_.Lookup(spec.log1);
    if (!r1.ok()) {
      error = r1.status();
      break;
    }
    Result<RegisteredLog> r2 = logs_.Lookup(spec.log2);
    if (!r2.ok()) {
      error = r2.status();
      break;
    }

    // Orientation: matchers require |V1| <= |V2| unless partial
    // mappings price the overflow as explicit nulls (the CLI applies
    // the same rule). Patterns are interpreted over the oriented
    // source log.
    const bool partial = std::isfinite(spec.partial_penalty);
    RegisteredLog log1 = std::move(r1).value();
    RegisteredLog log2 = std::move(r2).value();
    bool swapped = false;
    if (!partial && log1.log->num_events() > log2.log->num_events()) {
      std::swap(log1, log2);
      swapped = true;
    }

    bool warm_hit = false;
    Result<std::shared_ptr<WarmContext>> warm =
        contexts_.Acquire(log1, log2, spec.patterns, &warm_hit);
    if (!warm.ok()) {
      error = warm.status();
      break;
    }

    shed_level = CurrentShedLevel();
    if (shed_level >= 2) {
      shed_hard_->Increment();
    } else if (shed_level == 1 && spec.method != "heuristic") {
      shed_soft_->Increment();
    }

    exec::CancelToken token;
    {
      std::lock_guard<std::mutex> lock(tokens_mu_);
      active_tokens_.insert(&token);
      // Checked only *after* the insert, under tokens_mu_: either this
      // load sees drain_hard_ and pre-cancels, or the phase-2 sweep
      // (which sets drain_hard_ before taking tokens_mu_) finds the
      // token in the set — the request can't slip between the two.
      if (drain_hard_.load(std::memory_order_acquire)) {
        // Past the drain grace: the request still runs, but
        // pre-cancelled, so it resolves instantly through the anytime
        // path with whatever bounds are certifiable from zero work.
        token.Cancel();
        cancelled_drain_->Increment();
      }
    }
    outcome = ExecuteMatch(*warm.value(), swapped, spec, shed_level,
                           queue_ms, warm_hit, options_.service, token,
                           req_recorder.get());
    {
      std::lock_guard<std::mutex> lock(tokens_mu_);
      active_tokens_.erase(&token);
    }
    if (!outcome.ok) {
      error = outcome.error;
      break;
    }
    ok = true;
  } while (false);

  // Record latency and windowed telemetry *before* the response goes
  // out: a client that has seen its reply must find the request in the
  // very next stats or metrics read. The socket write is excluded from
  // the latency figure, which on loopback is sub-millisecond.
  const double total_ms = MsSince(enqueued);
  latency_ms_->Observe(total_ms);
  const auto now = std::chrono::steady_clock::now();
  win_latency_ms_.Observe(total_ms, now);
  win_matches_.Add(1, now);
  if (ok) {
    completed_->Increment();
    win_completed_.Add(1, now);
  } else {
    failed_->Increment();
    win_failed_.Add(1, now);
  }
  if (shed_level > 0) {
    win_shed_.Add(1, now);
  }
  if (ok) {
    access.ok = true;
    access.termination = outcome.reply.termination;
    access.run_ms = outcome.reply.elapsed_ms;
    access.objective = outcome.reply.objective;
    access.lower_bound = outcome.reply.lower_bound;
    access.upper_bound = outcome.reply.upper_bound;
    access.bytes_out =
        Send(*session, BuildMatchResponse(req.id, outcome.reply, ctx));
  } else {
    access.error_code = ErrorCodeToString(ErrorCodeForStatus(error));
    access.bytes_out =
        SendError(session, req.id, RequestOp::kMatch, error, ctx);
  }
  span.AddArg("total_ms", total_ms);
  span.AddArg("shed_level", shed_level);
  access.shed_level = shed_level;
  access.total_ms = total_ms;

  if (req_recorder != nullptr) {
    // Keep the trace when the sampler picked this id, when the request
    // was slow, or when it ended degraded (non-"completed" termination
    // covers deadline/cancelled overload endings) or failed outright.
    const bool degraded = !ok || access.termination != "completed";
    const bool slow = options_.trace_slow_ms > 0.0 &&
                      total_ms >= options_.trace_slow_ms;
    if (degraded || slow || SampledByRate(ctx.request_id)) {
      req_root->AddArg("total_ms", total_ms);
      req_root->AddArg("shed_level", shed_level);
      req_root.reset();  // Close the root span before serializing.
      Result<std::string> path =
          trace_ring_->WriteRequestTrace(ctx.request_id, *req_recorder);
      if (path.ok()) {
        access.sampled = true;
        access.trace_file = std::move(path).value();
      }
    }
  }
  LogAccess(std::move(access));
}

void MatchServer::WorkerLoop() {
  while (std::optional<AdmissionQueue::Item> item = queue_.Pop()) {
    in_flight_gauge_->Set(
        static_cast<double>(in_flight_.fetch_add(1) + 1));
    UpdateQueueGauges();
    item->work();
    // MarkDone before the gauge update: the queue's executing count is
    // what DrainCoordinator trusts, and it must never undercount.
    queue_.MarkDone();
    in_flight_gauge_->Set(
        static_cast<double>(in_flight_.fetch_sub(1) - 1));
  }
}

void MatchServer::RequestDrain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) {
    return;  // Already draining.
  }
  drain_started_ = std::chrono::steady_clock::now();
  draining_gauge_->Set(1.0);
  queue_.Close();
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    (void)!::write(wake_pipe_[1], &byte, 1);
  }
  if (metrics_wake_[1] >= 0) {
    const char byte = 1;
    (void)!::write(metrics_wake_[1], &byte, 1);
  }
  drain_thread_ = std::thread([this] { DrainCoordinator(); });
}

void MatchServer::DrainCoordinator() {
  // Phase 1: give admitted work the grace period to finish on its own
  // budgets. Idle() observes depth and executing under one lock, and a
  // popped item counts as executing until MarkDone, so a request in
  // the window between Pop and its first instruction cannot make the
  // queue look drained and skip the phase-2 cancel backstop.
  while (MsSince(drain_started_) < options_.drain_grace_ms) {
    if (queue_.Idle()) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // Phase 2: budget out the stragglers. Every active request token is
  // cancelled (its match returns anytime bounds), the warm contexts'
  // evaluator drain tokens stop long frequency scans, and requests
  // still queued start pre-cancelled (see RunMatch).
  drain_hard_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(tokens_mu_);
    for (exec::CancelToken* token : active_tokens_) {
      if (!token->cancelled()) {  // Pre-cancelled ones already counted.
        token->Cancel();
        cancelled_drain_->Increment();
      }
    }
  }
  contexts_.CancelAll();
}

void MatchServer::Wait() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  if (drain_thread_.joinable()) {
    drain_thread_.join();
  }
  if (metrics_thread_.joinable()) {
    metrics_thread_.join();
  }
  if (metrics_fd_ >= 0) {
    ::close(metrics_fd_);
    metrics_fd_ = -1;
  }
  for (int i = 0; i < 2; ++i) {
    if (metrics_wake_[i] >= 0) {
      ::close(metrics_wake_[i]);
      metrics_wake_[i] = -1;
    }
  }
  // All responses are out; unblock and join the session readers.
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions = sessions_;
  }
  for (const auto& session : sessions) {
    std::lock_guard<std::mutex> lock(session->write_mu);
    if (session->fd >= 0) {
      ::shutdown(session->fd, SHUT_RDWR);
    }
  }
  for (const auto& session : sessions) {
    if (session->thread.joinable()) {
      session->thread.join();
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int i = 0; i < 2; ++i) {
    if (wake_pipe_[i] >= 0) {
      ::close(wake_pipe_[i]);
      wake_pipe_[i] = -1;
    }
  }
  if (drain_started_ != std::chrono::steady_clock::time_point{}) {
    drain_ms_gauge_->Set(MsSince(drain_started_));
  }
  draining_gauge_->Set(2.0);  // 0 = serving, 1 = draining, 2 = stopped.
  in_flight_gauge_->Set(0.0);
  UpdateQueueGauges();
}

obs::TelemetrySnapshot MatchServer::SnapshotTelemetry() const {
  return obs::CaptureSnapshot(*metrics_);
}

obs::TelemetrySnapshot MatchServer::WindowedSnapshot() const {
  const auto now = std::chrono::steady_clock::now();
  obs::TelemetrySnapshot snap;
  const std::uint64_t matches = win_matches_.WindowTotal(now);
  const std::uint64_t completed = win_completed_.WindowTotal(now);
  const std::uint64_t failed = win_failed_.WindowTotal(now);
  const std::uint64_t rejected = win_rejected_overload_.WindowTotal(now);
  const std::uint64_t shed = win_shed_.WindowTotal(now);
  snap.counters["serve.matches"] = matches;
  snap.counters["serve.completed"] = completed;
  snap.counters["serve.failed"] = failed;
  snap.counters["serve.rejected_overload"] = rejected;
  snap.counters["serve.shed"] = shed;
  snap.histograms["serve.queue_wait_ms"] =
      win_queue_wait_ms_.WindowSnapshot(now);
  snap.histograms["serve.latency_ms"] = win_latency_ms_.WindowSnapshot(now);
  // Goodput: completed requests per second over the window. Shed rate:
  // of everything that asked for a match, the fraction the server
  // degraded or turned away.
  snap.gauges["serve.goodput_rps"] = win_completed_.WindowRatePerSec(now);
  const std::uint64_t offered = matches + rejected;
  snap.gauges["serve.shed_rate"] =
      offered > 0
          ? static_cast<double>(shed + rejected) /
                static_cast<double>(offered)
          : 0.0;
  return snap;
}

std::string MatchServer::PrometheusText() const {
  const obs::TelemetrySnapshot windowed = WindowedSnapshot();
  return obs::TelemetryToPrometheusText(SnapshotTelemetry(), &windowed);
}

void MatchServer::LogAccess(AccessLogEntry entry) {
  if (access_log_ == nullptr) {
    return;
  }
  entry.ts_ms = MsSince(started_);
  // A full disk or yanked log file must never fail a request; the
  // entry is simply lost.
  (void)access_log_->Write(entry);
}

bool MatchServer::SampledByRate(std::uint64_t request_id) const {
  if (options_.trace_sample_rate <= 0.0) {
    return false;
  }
  if (options_.trace_sample_rate >= 1.0) {
    return true;
  }
  return UniformFromId(request_id) < options_.trace_sample_rate;
}

Status MatchServer::StartMetricsEndpoint() {
  metrics_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (metrics_fd_ < 0) {
    return Status::Internal("metrics socket() failed: " +
                            std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(metrics_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.metrics_port));
  if (::bind(metrics_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(metrics_fd_);
    metrics_fd_ = -1;
    return Status::Internal("metrics bind() failed: " +
                            std::string(std::strerror(errno)));
  }
  if (::listen(metrics_fd_, 16) < 0) {
    ::close(metrics_fd_);
    metrics_fd_ = -1;
    return Status::Internal("metrics listen() failed: " +
                            std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(metrics_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    metrics_port_ = ntohs(addr.sin_port);
  }
  if (::pipe(metrics_wake_) < 0) {
    ::close(metrics_fd_);
    metrics_fd_ = -1;
    return Status::Internal("metrics pipe() failed: " +
                            std::string(std::strerror(errno)));
  }
  metrics_thread_ = std::thread([this] { MetricsLoop(); });
  return Status::OK();
}

void MatchServer::MetricsLoop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {metrics_fd_, POLLIN, 0};
    fds[1] = {metrics_wake_[0], POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if ((fds[1].revents & POLLIN) != 0 ||
        draining_.load(std::memory_order_acquire)) {
      break;  // Drain: the endpoint goes down with the server.
    }
    if ((fds[0].revents & POLLIN) == 0) {
      continue;
    }
    const int fd = ::accept(metrics_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    ServeMetricsConnection(fd);
  }
}

void MatchServer::ServeMetricsConnection(int fd) {
  // One scrape per connection, HTTP/1.0 close semantics: read until the
  // header terminator (scrapers send tiny GETs), answer, hang up. The
  // read is bounded by SO_RCVTIMEO so a silent client cannot wedge the
  // metrics thread.
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::string request;
  char chunk[1024];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      break;
    }
    request.append(chunk, static_cast<std::size_t>(n));
  }
  const std::string body = PrometheusText();
  std::string response =
      "HTTP/1.0 200 OK\r\n"
      "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      "Content-Length: " +
      std::to_string(body.size()) +
      "\r\n"
      "Connection: close\r\n\r\n" +
      body;
  std::size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n = ::send(fd, response.data() + sent,
                             response.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      break;
    }
    sent += static_cast<std::size_t>(n);
  }
  ::close(fd);
}

}  // namespace hematch::serve
