#include "serve/server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <thread>
#include <utility>

#include "log/log_io.h"

namespace hematch::serve {

namespace {

double MsSince(std::chrono::steady_clock::time_point then) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - then)
      .count();
}

/// Latency buckets sized for millisecond-scale request deadlines.
std::vector<double> LatencyBounds() {
  return {1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000};
}

ErrorCode ErrorCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kUnimplemented:
      return ErrorCode::kBadRequest;
    case StatusCode::kNotFound:
      return ErrorCode::kNotFound;
    case StatusCode::kResourceExhausted:
      return ErrorCode::kRejectedOverload;
    default:
      return ErrorCode::kInternal;
  }
}

}  // namespace

MatchServer::MatchServer(ServerOptions options)
    : options_(std::move(options)),
      metrics_(std::make_unique<obs::MetricsRegistry>(options_.telemetry)),
      logs_(options_.max_logs),
      contexts_(options_.max_contexts, metrics_.get()),
      queue_(AdmissionOptions{options_.max_queue_depth,
                              options_.max_backlog_ms, options_.aging_ms}),
      accepted_(metrics_->GetCounter("serve.accepted")),
      rejected_overload_(metrics_->GetCounter("serve.rejected_overload")),
      rejected_draining_(metrics_->GetCounter("serve.rejected_draining")),
      bad_requests_(metrics_->GetCounter("serve.bad_requests")),
      not_found_(metrics_->GetCounter("serve.not_found")),
      completed_(metrics_->GetCounter("serve.completed")),
      failed_(metrics_->GetCounter("serve.failed")),
      cancelled_drain_(metrics_->GetCounter("serve.cancelled_by_drain")),
      shed_soft_(metrics_->GetCounter("serve.shed_soft")),
      shed_hard_(metrics_->GetCounter("serve.shed_hard")),
      connections_(metrics_->GetCounter("serve.connections")),
      connections_rejected_(
          metrics_->GetCounter("serve.connections_rejected")),
      queue_depth_gauge_(metrics_->GetGauge("serve.queue_depth")),
      backlog_gauge_(metrics_->GetGauge("serve.backlog_ms")),
      in_flight_gauge_(metrics_->GetGauge("serve.in_flight")),
      draining_gauge_(metrics_->GetGauge("serve.draining")),
      drain_ms_gauge_(metrics_->GetGauge("serve.drain_ms")),
      queue_wait_ms_(
          metrics_->GetHistogram("serve.queue_wait_ms", LatencyBounds())),
      latency_ms_(metrics_->GetHistogram("serve.latency_ms", LatencyBounds())) {
  if (options_.workers <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    options_.workers = hw > 0 ? static_cast<int>(hw) : 2;
  }
  if (options_.shed_depth == 0) {
    options_.shed_depth = static_cast<std::size_t>(options_.workers) * 2;
  }
  if (options_.shed_hard_depth == 0) {
    options_.shed_hard_depth = static_cast<std::size_t>(options_.workers) * 4;
  }
}

MatchServer::~MatchServer() {
  if (!stopped_.load(std::memory_order_acquire) && listen_fd_ >= 0) {
    RequestDrain();
    Wait();
  }
}

Status MatchServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal("socket() failed: " +
                            std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind() failed: " +
                            std::string(std::strerror(errno)));
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen() failed: " +
                            std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  if (::pipe(wake_pipe_) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("pipe() failed: " +
                            std::string(std::strerror(errno)));
  }

  started_ = std::chrono::steady_clock::now();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void MatchServer::AcceptLoop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if ((fds[1].revents & POLLIN) != 0 ||
        draining_.load(std::memory_order_acquire)) {
      break;  // Drain: stop accepting.
    }
    if ((fds[0].revents & POLLIN) == 0) {
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    std::size_t live = 0;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      // Reap finished sessions so the connection cap tracks live ones.
      // A session with open == false is on (or past) its exit path, so
      // the join below is brief.
      for (auto& s : sessions_) {
        if (!s->open.load(std::memory_order_acquire) && s->thread.joinable()) {
          s->thread.join();
        }
      }
      sessions_.erase(
          std::remove_if(sessions_.begin(), sessions_.end(),
                         [](const std::shared_ptr<Session>& s) {
                           return !s->open.load(std::memory_order_acquire) &&
                                  !s->thread.joinable();
                         }),
          sessions_.end());
      for (const auto& s : sessions_) {
        if (s->open.load(std::memory_order_acquire)) {
          ++live;
        }
      }
    }
    if (live >= static_cast<std::size_t>(options_.max_connections)) {
      connections_rejected_->Increment();
      const std::string line =
          BuildErrorResponse(0, RequestOp::kPing, ErrorCode::kRejectedOverload,
                             "too many connections") +
          "\n";
      (void)::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    connections_->Increment();
    if (options_.send_timeout_ms > 0.0) {
      // A client that stops reading must time a worker out of send, not
      // block it forever while it holds the session write mutex.
      timeval tv{};
      tv.tv_sec = static_cast<time_t>(options_.send_timeout_ms / 1000.0);
      tv.tv_usec = static_cast<suseconds_t>(
          std::fmod(options_.send_timeout_ms, 1000.0) * 1000.0);
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    auto session = std::make_shared<Session>();
    session->fd = fd;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions_.push_back(session);
    }
    session->thread = std::thread([this, session] { SessionLoop(session); });
  }
}

void MatchServer::SessionLoop(const std::shared_ptr<Session>& session) {
  obs::ScopedSpan span(options_.trace_recorder, "serve.session", "serve");
  session->span_id = span.id();
  std::string buffer;
  char chunk[4096];
  std::uint64_t lines = 0;
  while (session->open.load(std::memory_order_acquire)) {
    const ssize_t n = ::recv(session->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      break;  // EOF, error, or shutdown() from Wait.
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) {
        break;
      }
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      if (!line.empty()) {
        ++lines;
        HandleLine(session, line);
      }
    }
    buffer.erase(0, start);
    if (options_.max_request_bytes > 0 &&
        buffer.size() > options_.max_request_bytes) {
      // A line this long without a newline is a broken or hostile
      // client; reject and hang up — framing past this point is
      // unrecoverable, and the buffer must stay bounded.
      bad_requests_->Increment();
      Send(*session,
           BuildErrorResponse(0, RequestOp::kPing, ErrorCode::kBadRequest,
                              "request line exceeds max_request_bytes"));
      break;
    }
  }
  session->open.store(false, std::memory_order_release);
  {
    // Close under the write lock: a worker mid-Send finishes first, and
    // no Send can ever touch a reused descriptor number.
    std::lock_guard<std::mutex> lock(session->write_mu);
    ::close(session->fd);
    session->fd = -1;
  }
  span.AddArg("requests", static_cast<double>(lines));
}

void MatchServer::Send(Session& session, const std::string& line) {
  std::lock_guard<std::mutex> lock(session.write_mu);
  if (!session.open.load(std::memory_order_acquire) || session.fd < 0) {
    return;  // Client went away; the work was still accounted.
  }
  std::string out = line;
  out += '\n';
  // SO_SNDTIMEO bounds each ::send; the overall deadline bounds a
  // client trickle-reading one byte per timeout, so a response write
  // can never hold write_mu for more than ~2× send_timeout_ms.
  const bool bounded = options_.send_timeout_ms > 0.0;
  const auto give_up =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(options_.send_timeout_ms));
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n = ::send(session.fd, out.data() + sent, out.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;  // Error, or SO_SNDTIMEO expired (EAGAIN): dead client.
    }
    sent += static_cast<std::size_t>(n);
    if (bounded && std::chrono::steady_clock::now() >= give_up) {
      break;
    }
  }
  if (sent < out.size()) {
    // Treat the stalled/broken client as gone: drop the response, and
    // shutdown() so the session's blocked recv unblocks and the reader
    // thread exits (it owns the close).
    session.open.store(false, std::memory_order_release);
    ::shutdown(session.fd, SHUT_RDWR);
  }
}

void MatchServer::SendError(const std::shared_ptr<Session>& session,
                            std::uint64_t id, RequestOp op,
                            const Status& status) {
  const ErrorCode code = ErrorCodeForStatus(status);
  if (code == ErrorCode::kNotFound) {
    not_found_->Increment();
  } else if (code == ErrorCode::kBadRequest) {
    bad_requests_->Increment();
  }
  Send(*session, BuildErrorResponse(id, op, code, status.message()));
}

void MatchServer::HandleLine(const std::shared_ptr<Session>& session,
                             const std::string& line) {
  Result<ServeRequest> parsed = ParseRequest(line);
  if (!parsed.ok()) {
    bad_requests_->Increment();
    Send(*session,
         BuildErrorResponse(0, RequestOp::kPing, ErrorCode::kBadRequest,
                            parsed.status().message()));
    return;
  }
  ServeRequest req = std::move(parsed).value();
  switch (req.op) {
    case RequestOp::kPing:
      Send(*session, BuildPingResponse(req.id));
      return;
    case RequestOp::kStats:
      Send(*session, BuildStatsResponse(req.id, SnapshotTelemetry(),
                                        MsSince(started_)));
      return;
    case RequestOp::kDrain:
      RequestDrain();
      Send(*session,
           BuildDrainResponse(req.id, in_flight_.load(), queue_.depth()));
      return;
    case RequestOp::kRegisterLog:
      HandleRegisterLog(session, req);
      return;
    case RequestOp::kMatch:
      HandleMatch(session, std::move(req));
      return;
  }
}

void MatchServer::HandleRegisterLog(const std::shared_ptr<Session>& session,
                                    const ServeRequest& req) {
  if (draining_.load(std::memory_order_acquire)) {
    rejected_draining_->Increment();
    Send(*session, BuildErrorResponse(req.id, RequestOp::kRegisterLog,
                                      ErrorCode::kRejectedDraining,
                                      "server is draining"));
    return;
  }
  std::istringstream input(req.register_log.content);
  Result<EventLog> log = req.register_log.format == "csv"
                             ? ReadCsvLog(input)
                             : ReadTraceLog(input);
  if (!log.ok()) {
    SendError(session, req.id, RequestOp::kRegisterLog, log.status());
    return;
  }
  if (log->empty() || log->num_events() == 0) {
    SendError(session, req.id, RequestOp::kRegisterLog,
              Status::InvalidArgument("log has no traces/events"));
    return;
  }
  Result<RegisteredLog> entry =
      logs_.Register(req.register_log.name, std::move(log).value());
  if (!entry.ok()) {
    if (entry.status().code() == StatusCode::kResourceExhausted) {
      rejected_overload_->Increment();
    }
    SendError(session, req.id, RequestOp::kRegisterLog, entry.status());
    return;
  }
  Send(*session,
       BuildRegisterLogResponse(req.id, entry->name, entry->fingerprint_hex,
                                entry->log->num_traces(),
                                entry->log->num_events()));
}

void MatchServer::UpdateQueueGauges() {
  queue_depth_gauge_->Set(static_cast<double>(queue_.depth()));
  backlog_gauge_->Set(queue_.backlog_ms());
}

void MatchServer::HandleMatch(const std::shared_ptr<Session>& session,
                              ServeRequest req) {
  const std::uint64_t id = req.id;
  const double deadline_ms = EffectiveDeadlineMs(req.match, options_.service);

  AdmissionQueue::Item item;
  item.tenant = req.match.tenant;
  item.deadline_ms = deadline_ms;
  // The closure owns the request and a shared_ptr to the session, so a
  // connection closing while the item waits in the queue cannot dangle.
  const auto enqueued = std::chrono::steady_clock::now();
  auto owned = std::make_shared<ServeRequest>(std::move(req));
  item.work = [this, session, owned, enqueued] {
    RunMatch(session, *owned, enqueued);
  };

  const AdmissionQueue::PushResult verdict = queue_.Push(std::move(item));
  UpdateQueueGauges();
  switch (verdict) {
    case AdmissionQueue::PushResult::kAdmitted:
      accepted_->Increment();
      return;
    case AdmissionQueue::PushResult::kOverloadDepth:
    case AdmissionQueue::PushResult::kOverloadBacklog: {
      rejected_overload_->Increment();
      // Retry hint: roughly one queue's worth of work per worker, and
      // never less than one request deadline.
      const double retry_ms = std::max(
          deadline_ms,
          queue_.backlog_ms() / std::max(options_.workers, 1));
      Send(*session,
           BuildErrorResponse(
               id, RequestOp::kMatch, ErrorCode::kRejectedOverload,
               std::string("admission rejected: ") +
                   PushResultToString(verdict),
               retry_ms));
      return;
    }
    case AdmissionQueue::PushResult::kDraining:
      rejected_draining_->Increment();
      Send(*session,
           BuildErrorResponse(id, RequestOp::kMatch,
                              ErrorCode::kRejectedDraining,
                              "server is draining"));
      return;
  }
}

int MatchServer::CurrentShedLevel() {
  const std::size_t depth = queue_.depth();
  if (depth >= options_.shed_hard_depth) {
    return 2;
  }
  if (depth >= options_.shed_depth) {
    return 1;
  }
  return 0;
}

void MatchServer::RunMatch(const std::shared_ptr<Session>& session,
                           const ServeRequest& req,
                           std::chrono::steady_clock::time_point enqueued) {
  const double queue_ms = MsSince(enqueued);
  queue_wait_ms_->Observe(queue_ms);
  const MatchRequestSpec& spec = req.match;

  // Request span, explicitly parented to its session's span even though
  // it runs on a worker thread.
  obs::ScopedSpan span(options_.trace_recorder, "serve.request", "serve",
                       session->span_id != 0 ? session->span_id
                                             : obs::kAutoParent);
  span.AddArg("queue_ms", queue_ms);

  Result<RegisteredLog> r1 = logs_.Lookup(spec.log1);
  if (!r1.ok()) {
    failed_->Increment();
    SendError(session, req.id, RequestOp::kMatch, r1.status());
    return;
  }
  Result<RegisteredLog> r2 = logs_.Lookup(spec.log2);
  if (!r2.ok()) {
    failed_->Increment();
    SendError(session, req.id, RequestOp::kMatch, r2.status());
    return;
  }

  // Orientation: matchers require |V1| <= |V2| unless partial mappings
  // price the overflow as explicit nulls (the CLI applies the same
  // rule). Patterns are interpreted over the oriented source log.
  const bool partial = std::isfinite(spec.partial_penalty);
  RegisteredLog log1 = std::move(r1).value();
  RegisteredLog log2 = std::move(r2).value();
  bool swapped = false;
  if (!partial && log1.log->num_events() > log2.log->num_events()) {
    std::swap(log1, log2);
    swapped = true;
  }

  bool warm_hit = false;
  Result<std::shared_ptr<WarmContext>> warm =
      contexts_.Acquire(log1, log2, spec.patterns, &warm_hit);
  if (!warm.ok()) {
    failed_->Increment();
    SendError(session, req.id, RequestOp::kMatch, warm.status());
    return;
  }

  const int shed_level = CurrentShedLevel();
  if (shed_level >= 2) {
    shed_hard_->Increment();
  } else if (shed_level == 1 && spec.method != "heuristic") {
    shed_soft_->Increment();
  }

  exec::CancelToken token;
  {
    std::lock_guard<std::mutex> lock(tokens_mu_);
    active_tokens_.insert(&token);
    // Checked only *after* the insert, under tokens_mu_: either this
    // load sees drain_hard_ and pre-cancels, or the phase-2 sweep
    // (which sets drain_hard_ before taking tokens_mu_) finds the
    // token in the set — the request can't slip between the two.
    if (drain_hard_.load(std::memory_order_acquire)) {
      // Past the drain grace: the request still runs, but
      // pre-cancelled, so it resolves instantly through the anytime
      // path with whatever bounds are certifiable from zero work.
      token.Cancel();
      cancelled_drain_->Increment();
    }
  }
  MatchOutcome outcome =
      ExecuteMatch(*warm.value(), swapped, spec, shed_level, queue_ms,
                   warm_hit, options_.service, token);
  {
    std::lock_guard<std::mutex> lock(tokens_mu_);
    active_tokens_.erase(&token);
  }

  if (!outcome.ok) {
    failed_->Increment();
    SendError(session, req.id, RequestOp::kMatch, outcome.error);
  } else {
    completed_->Increment();
    Send(*session, BuildMatchResponse(req.id, outcome.reply));
  }
  const double total_ms = MsSince(enqueued);
  latency_ms_->Observe(total_ms);
  span.AddArg("total_ms", total_ms);
  span.AddArg("shed_level", shed_level);
}

void MatchServer::WorkerLoop() {
  while (std::optional<AdmissionQueue::Item> item = queue_.Pop()) {
    in_flight_gauge_->Set(
        static_cast<double>(in_flight_.fetch_add(1) + 1));
    UpdateQueueGauges();
    item->work();
    // MarkDone before the gauge update: the queue's executing count is
    // what DrainCoordinator trusts, and it must never undercount.
    queue_.MarkDone();
    in_flight_gauge_->Set(
        static_cast<double>(in_flight_.fetch_sub(1) - 1));
  }
}

void MatchServer::RequestDrain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) {
    return;  // Already draining.
  }
  drain_started_ = std::chrono::steady_clock::now();
  draining_gauge_->Set(1.0);
  queue_.Close();
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    (void)!::write(wake_pipe_[1], &byte, 1);
  }
  drain_thread_ = std::thread([this] { DrainCoordinator(); });
}

void MatchServer::DrainCoordinator() {
  // Phase 1: give admitted work the grace period to finish on its own
  // budgets. Idle() observes depth and executing under one lock, and a
  // popped item counts as executing until MarkDone, so a request in
  // the window between Pop and its first instruction cannot make the
  // queue look drained and skip the phase-2 cancel backstop.
  while (MsSince(drain_started_) < options_.drain_grace_ms) {
    if (queue_.Idle()) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // Phase 2: budget out the stragglers. Every active request token is
  // cancelled (its match returns anytime bounds), the warm contexts'
  // evaluator drain tokens stop long frequency scans, and requests
  // still queued start pre-cancelled (see RunMatch).
  drain_hard_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(tokens_mu_);
    for (exec::CancelToken* token : active_tokens_) {
      if (!token->cancelled()) {  // Pre-cancelled ones already counted.
        token->Cancel();
        cancelled_drain_->Increment();
      }
    }
  }
  contexts_.CancelAll();
}

void MatchServer::Wait() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  if (drain_thread_.joinable()) {
    drain_thread_.join();
  }
  // All responses are out; unblock and join the session readers.
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions = sessions_;
  }
  for (const auto& session : sessions) {
    std::lock_guard<std::mutex> lock(session->write_mu);
    if (session->fd >= 0) {
      ::shutdown(session->fd, SHUT_RDWR);
    }
  }
  for (const auto& session : sessions) {
    if (session->thread.joinable()) {
      session->thread.join();
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int i = 0; i < 2; ++i) {
    if (wake_pipe_[i] >= 0) {
      ::close(wake_pipe_[i]);
      wake_pipe_[i] = -1;
    }
  }
  if (drain_started_ != std::chrono::steady_clock::time_point{}) {
    drain_ms_gauge_->Set(MsSince(drain_started_));
  }
  draining_gauge_->Set(2.0);  // 0 = serving, 1 = draining, 2 = stopped.
  in_flight_gauge_->Set(0.0);
  UpdateQueueGauges();
}

obs::TelemetrySnapshot MatchServer::SnapshotTelemetry() const {
  return obs::CaptureSnapshot(*metrics_);
}

}  // namespace hematch::serve
