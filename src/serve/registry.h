#ifndef HEMATCH_SERVE_REGISTRY_H_
#define HEMATCH_SERVE_REGISTRY_H_

/// \file
/// The server's warm state: registered event logs and the LRU cache of
/// `MatchingContext`s built over them.
///
/// Building a context is the expensive part of a match request
/// (dependency graphs, pattern index, parallel f1 precompute) and its
/// frequency-memo caches are the part that pays off across requests —
/// so contexts are cached keyed by `(fp(log1), fp(log2), fp(patterns))`
/// and shared by every request that matches the same instance. Each
/// worker wraps the shared base in a sibling `MatchingContext` with its
/// own governor (the portfolio pattern), so concurrent requests trip
/// their own budgets while amortizing one memo cache.
///
/// Lifetime: registries hand out `shared_ptr`s. Evicting an entry only
/// unlinks it — requests already holding the context finish on it and
/// the memory is reclaimed when the last one completes. Hard drain
/// flips every entry's drain token, which the shared frequency
/// evaluators poll, so even a mid-scan request stops promptly.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/matching_context.h"
#include "exec/budget.h"
#include "log/event_log.h"
#include "obs/metrics.h"

namespace hematch::serve {

/// One registered log: the content plus its fingerprint identity.
struct RegisteredLog {
  std::string name;
  std::uint64_t fingerprint = 0;
  std::string fingerprint_hex;
  std::shared_ptr<const EventLog> log;
};

/// Name/fingerprint → immutable `EventLog`. Registration is explicit
/// and bounded: a full registry rejects (ResourceExhausted) rather than
/// silently evicting a log some in-flight request is about to resolve.
/// Re-registering identical content under the same name is idempotent;
/// a name collision with different content is an error.
class LogRegistry {
 public:
  explicit LogRegistry(std::size_t max_logs);

  LogRegistry(const LogRegistry&) = delete;
  LogRegistry& operator=(const LogRegistry&) = delete;

  Result<RegisteredLog> Register(const std::string& name, EventLog log);

  /// Resolves by registration name or by 16-hex-digit fingerprint.
  Result<RegisteredLog> Lookup(const std::string& key) const;

  std::size_t size() const;

 private:
  const std::size_t max_logs_;
  mutable std::mutex mu_;
  std::map<std::string, RegisteredLog> by_name_;
  std::map<std::string, RegisteredLog> by_fp_;
};

/// A cached matching instance: the shared base context plus everything
/// that keeps it alive and stoppable.
struct WarmContext {
  std::shared_ptr<const EventLog> log1;
  std::shared_ptr<const EventLog> log2;
  std::unique_ptr<MatchingContext> base;
  /// Long-lived cancel token wired into the shared frequency
  /// evaluators; `ContextRegistry::CancelAll` flips it on hard drain.
  exec::CancelToken drain;
};

/// LRU cache of `WarmContext`s. Concurrent `Acquire`s of the same key
/// build once (the loser blocks on the winner's slot); concurrent
/// `Acquire`s of different keys build in parallel.
class ContextRegistry {
 public:
  /// `metrics` receives `serve.context_*` counters; may be a disabled
  /// registry, must outlive this object.
  ContextRegistry(std::size_t max_contexts, obs::MetricsRegistry* metrics);

  ContextRegistry(const ContextRegistry&) = delete;
  ContextRegistry& operator=(const ContextRegistry&) = delete;

  /// Returns the warm context for the oriented instance, building it on
  /// a miss. `pattern_texts` are complex patterns over `log1`'s
  /// vocabulary; `partial_penalty` participates in the key only through
  /// the caller's orientation choice (the context itself is
  /// penalty-agnostic). Sets `*warm_hit` (optional) to whether the
  /// context was already built.
  Result<std::shared_ptr<WarmContext>> Acquire(
      const RegisteredLog& log1, const RegisteredLog& log2,
      const std::vector<std::string>& pattern_texts, bool* warm_hit);

  /// Flips every cached context's drain token (including entries
  /// already evicted but still held by in-flight requests — eviction
  /// keeps a weak reference for exactly this).
  void CancelAll();

  std::size_t size() const;

 private:
  struct Slot {
    std::mutex build_mu;
    std::shared_ptr<WarmContext> context;  ///< Null until built.
    Status build_error = Status::OK();
    std::uint64_t last_used = 0;
  };

  const std::size_t max_contexts_;
  obs::MetricsRegistry* metrics_;
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* evictions_;

  mutable std::mutex mu_;
  std::uint64_t tick_ = 0;
  std::map<std::string, std::shared_ptr<Slot>> slots_;
  /// Evicted-but-possibly-alive contexts, so CancelAll reaches them.
  std::vector<std::weak_ptr<WarmContext>> evicted_;
};

}  // namespace hematch::serve

#endif  // HEMATCH_SERVE_REGISTRY_H_
