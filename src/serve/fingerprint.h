#ifndef HEMATCH_SERVE_FINGERPRINT_H_
#define HEMATCH_SERVE_FINGERPRINT_H_

/// \file
/// Content fingerprints for the match server's registries.
///
/// A registered log is addressed by the 64-bit fingerprint of its
/// content (dictionary in id order, then traces in file order), so the
/// same log registered twice — or by two tenants — lands on one entry
/// and one warm `MatchingContext`. Pattern sets hash the same way, so
/// the context-registry key `(fp(log1), fp(log2), fp(patterns))` is
/// stable across connections and server restarts.

#include <cstdint>
#include <string>
#include <vector>

#include "log/event_log.h"

namespace hematch::serve {

/// Order-sensitive content hash: dictionary names in id order, then
/// every trace's event ids. Two logs with the same vocabulary order and
/// trace order collide only as a 64-bit hash accident.
std::uint64_t FingerprintLog(const EventLog& log);

/// Order-insensitive hash of a pattern-text set (sorted before mixing,
/// so request JSON listing the same patterns in any order shares a warm
/// context).
std::uint64_t FingerprintPatternTexts(std::vector<std::string> texts);

/// 16-hex-digit lowercase rendering, the wire form of a fingerprint.
std::string FingerprintHex(std::uint64_t fp);

}  // namespace hematch::serve

#endif  // HEMATCH_SERVE_FINGERPRINT_H_
