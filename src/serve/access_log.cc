#include "serve/access_log.h"

#include "obs/metrics_json.h"
#include "obs/trace_analysis.h"

namespace hematch::serve {

namespace {

using obs::JsonEscape;
using obs::JsonNumber;
using obs::JsonValue;

void AppendString(std::string& out, const char* key, std::string_view value) {
  out += ",\"";
  out += key;
  out += "\":\"";
  out += JsonEscape(value);
  out += '"';
}

void AppendNumber(std::string& out, const char* key, double value) {
  out += ",\"";
  out += key;
  out += "\":";
  out += JsonNumber(value);
}

void AppendUint(std::string& out, const char* key, std::uint64_t value) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(value);
}

void AppendBool(std::string& out, const char* key, bool value) {
  out += ",\"";
  out += key;
  out += "\":";
  out += value ? "true" : "false";
}

}  // namespace

std::string FormatAccessLogEntry(const AccessLogEntry& entry) {
  std::string out = "{\"schema\":\"";
  out += kAccessLogSchema;
  out += '"';
  AppendNumber(out, "ts_ms", entry.ts_ms);
  AppendUint(out, "request_id", entry.request_id);
  AppendString(out, "correlation_id", entry.correlation_id);
  AppendString(out, "op", entry.op);
  AppendString(out, "tenant", entry.tenant);
  AppendString(out, "method", entry.method);
  AppendString(out, "admission", entry.admission);
  AppendUint(out, "shed_level", static_cast<std::uint64_t>(
                                    entry.shed_level < 0 ? 0
                                                         : entry.shed_level));
  AppendNumber(out, "queue_ms", entry.queue_ms);
  AppendNumber(out, "run_ms", entry.run_ms);
  AppendNumber(out, "total_ms", entry.total_ms);
  AppendString(out, "termination", entry.termination);
  AppendBool(out, "ok", entry.ok);
  AppendString(out, "error_code", entry.error_code);
  AppendNumber(out, "objective", entry.objective);
  AppendNumber(out, "lower_bound", entry.lower_bound);
  AppendNumber(out, "upper_bound", entry.upper_bound);
  AppendUint(out, "bytes_in", entry.bytes_in);
  AppendUint(out, "bytes_out", entry.bytes_out);
  AppendBool(out, "sampled", entry.sampled);
  AppendString(out, "trace_file", entry.trace_file);
  out += '}';
  return out;
}

Result<AccessLogEntry> ParseAccessLogLine(std::string_view line) {
  HEMATCH_ASSIGN_OR_RETURN(JsonValue doc, obs::ParseJson(line));
  if (doc.kind != JsonValue::Kind::kObject) {
    return Status::ParseError("access-log line is not a JSON object");
  }
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || schema->TextOr("") != kAccessLogSchema) {
    return Status::ParseError(std::string("access-log schema must be ") +
                              std::string(kAccessLogSchema));
  }
  AccessLogEntry entry;
  auto text = [&](const char* key) -> std::string {
    const JsonValue* v = doc.Find(key);
    return v != nullptr ? v->TextOr("") : "";
  };
  auto number = [&](const char* key) -> double {
    const JsonValue* v = doc.Find(key);
    return v != nullptr ? v->NumberOr(0.0) : 0.0;
  };
  auto boolean = [&](const char* key) -> bool {
    const JsonValue* v = doc.Find(key);
    return v != nullptr && v->kind == JsonValue::Kind::kBool && v->boolean;
  };
  entry.ts_ms = number("ts_ms");
  entry.request_id = static_cast<std::uint64_t>(number("request_id"));
  entry.correlation_id = text("correlation_id");
  entry.op = text("op");
  entry.tenant = text("tenant");
  entry.method = text("method");
  entry.admission = text("admission");
  entry.shed_level = static_cast<int>(number("shed_level"));
  entry.queue_ms = number("queue_ms");
  entry.run_ms = number("run_ms");
  entry.total_ms = number("total_ms");
  entry.termination = text("termination");
  entry.ok = boolean("ok");
  entry.error_code = text("error_code");
  entry.objective = number("objective");
  entry.lower_bound = number("lower_bound");
  entry.upper_bound = number("upper_bound");
  entry.bytes_in = static_cast<std::uint64_t>(number("bytes_in"));
  entry.bytes_out = static_cast<std::uint64_t>(number("bytes_out"));
  entry.sampled = boolean("sampled");
  entry.trace_file = text("trace_file");
  return entry;
}

AccessLog::AccessLog(std::string path, std::int64_t max_bytes)
    : file_(std::move(path), max_bytes) {}

Status AccessLog::Write(const AccessLogEntry& entry) {
  return file_.WriteLine(FormatAccessLogEntry(entry));
}

}  // namespace hematch::serve
