#ifndef HEMATCH_SERVE_PROTOCOL_H_
#define HEMATCH_SERVE_PROTOCOL_H_

/// \file
/// The `hematch.serve.v1` wire protocol: newline-delimited JSON over a
/// plain TCP stream. One request per line, one response line per
/// request, correlated by a caller-chosen numeric `id`. The codec is
/// shared by the server, the bundled client, and the protocol tests, so
/// "parse what we emit" is enforced in CI.
///
/// Requests (`op` selects the verb):
///
///   {"op":"ping","id":1}
///   {"op":"register_log","id":2,"name":"dept_a","format":"tr",
///    "content":"a b c\na c\n"}
///   {"op":"match","id":3,"log1":"dept_a","log2":"dept_b",
///    "patterns":["SEQ(a,b)"],"tenant":"team-x","deadline_ms":250,
///    "method":"auto"}
///   {"op":"stats","id":4}
///   {"op":"drain","id":5}
///   {"op":"metrics","id":6}
///
/// Any request may carry an opaque `"correlation_id"` string; the
/// server echoes it (plus its own numeric `"request_id"`) in the
/// response, its access log, and the request's sampled trace.
///
/// Responses always carry `schema`, `id`, `op`, and `ok`. Failures put
/// a machine-readable code in `error.code` — overload rejections are
/// explicit (`REJECTED_OVERLOAD` with a `retry_after_ms` hint), never
/// silent drops; see docs/ROBUSTNESS.md.

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "obs/telemetry.h"
#include "obs/trace_analysis.h"

namespace hematch::serve {

inline constexpr std::string_view kServeSchema = "hematch.serve.v1";

/// The protocol verbs.
enum class RequestOp : std::uint8_t {
  kPing = 0,
  kRegisterLog,
  kMatch,
  kStats,
  kDrain,
  kMetrics,
};

const char* RequestOpToString(RequestOp op);

/// Request-scoped identity, echoed in every response so a client (or an
/// operator grepping the access log) can line responses up with server
/// records. `request_id` is server-assigned and unique per accepted
/// line; `correlation_id` is whatever opaque string the client sent
/// (empty when the client sent none). The same `request_id` tags the
/// request's spans, its access-log entry, and its sampled trace file.
struct RequestContext {
  std::uint64_t request_id = 0;
  std::string correlation_id;
};

/// Machine-readable failure classes. The first two are client errors;
/// the REJECTED_* pair is the server protecting itself (resend later,
/// or elsewhere); INTERNAL means the request died inside the matcher
/// isolation boundary.
enum class ErrorCode : std::uint8_t {
  kBadRequest = 0,
  kNotFound,
  kRejectedOverload,
  kRejectedDraining,
  kInternal,
};

const char* ErrorCodeToString(ErrorCode code);

/// Payload of `op:"register_log"`: the log travels inline in the
/// request (trace-per-line or CSV text), is interned once, and is
/// addressable afterwards by `name` or by content fingerprint.
struct RegisterLogSpec {
  std::string name;
  std::string format = "tr";  ///< "tr" or "csv".
  std::string content;
};

/// Payload of `op:"match"`. `log1`/`log2` name previously registered
/// logs (by registration name or fingerprint hex). Zero deadline means
/// "server default"; the server clamps to its configured maximum.
struct MatchRequestSpec {
  std::string log1;
  std::string log2;
  std::vector<std::string> patterns;  ///< Complex patterns over log1.
  std::string tenant = "default";     ///< Fair-share scheduling key.
  double deadline_ms = 0.0;
  std::uint64_t max_expansions = 0;   ///< 0 = server default.
  /// Per-⊥ penalty; infinity = classic total mappings.
  double partial_penalty = std::numeric_limits<double>::infinity();
  /// "auto" | "exact" | "heuristic" | "parallel". "parallel" runs the
  /// multi-threaded exact matcher (exec/parallel_astar.h) as the
  /// primary ladder rung; load shedding degrades it exactly like
  /// "exact"/"auto".
  std::string method = "auto";
  /// Worker threads for method "parallel" (0 = hardware concurrency).
  int search_threads = 0;
};

/// One parsed request line.
struct ServeRequest {
  RequestOp op = RequestOp::kPing;
  std::uint64_t id = 0;
  std::string correlation_id;    ///< Optional, any op; echoed back.
  RegisterLogSpec register_log;  ///< Valid when op == kRegisterLog.
  MatchRequestSpec match;        ///< Valid when op == kMatch.
};

/// Parses one request line. Unknown ops, missing required fields, and
/// malformed JSON yield ParseError/InvalidArgument — the server turns
/// those into BAD_REQUEST responses rather than dropping the line.
Result<ServeRequest> ParseRequest(std::string_view line);

/// --- Request builders (client side; each returns one line, no '\n').
/// `correlation_id` is optional; when non-empty it rides along and the
/// server echoes it in the response and its access log.

std::string BuildPingRequest(std::uint64_t id,
                             std::string_view correlation_id = {});
std::string BuildRegisterLogRequest(std::uint64_t id,
                                    const RegisterLogSpec& spec,
                                    std::string_view correlation_id = {});
std::string BuildMatchRequest(std::uint64_t id, const MatchRequestSpec& spec,
                              std::string_view correlation_id = {});
std::string BuildStatsRequest(std::uint64_t id,
                              std::string_view correlation_id = {});
std::string BuildDrainRequest(std::uint64_t id,
                              std::string_view correlation_id = {});
std::string BuildMetricsRequest(std::uint64_t id,
                                std::string_view correlation_id = {});

/// --- Response builders (server side; each returns one line, no '\n').

/// Everything a completed (possibly degraded) match reports back.
struct MatchReplyData {
  std::string termination;   ///< TerminationReasonToString of the run.
  bool degraded = false;     ///< The fallback ladder ran > 1 stage.
  int shed_level = 0;        ///< 0 = exact ladder, 1 = heuristic, 2 = simple.
  bool swapped = false;      ///< Logs were swapped for |V1| <= |V2|.
  bool context_warm = false; ///< Served from a warm MatchingContext.
  double objective = 0.0;
  double lower_bound = 0.0;
  double upper_bound = 0.0;
  bool bounds_certified = false;
  double elapsed_ms = 0.0;   ///< Matcher wall-clock.
  double queue_ms = 0.0;     ///< Admission-queue wait.
  std::uint64_t mappings_processed = 0;
  /// Event-name pairs in the *request's* orientation (source event of
  /// `log1` first, even when the server swapped internally).
  std::vector<std::pair<std::string, std::string>> mapping;
  std::vector<std::string> unmapped;  ///< Sources mapped to ⊥.
  /// Fallback-ladder trace: method name + termination per stage.
  std::vector<std::pair<std::string, std::string>> stages;
};

/// Every response builder takes the request's `RequestContext`; a
/// non-zero `request_id` and a non-empty `correlation_id` are echoed in
/// the envelope. The default (zero / empty) context emits neither, so
/// existing callers and golden lines are unchanged.

std::string BuildPingResponse(std::uint64_t id,
                              const RequestContext& ctx = {});
std::string BuildRegisterLogResponse(std::uint64_t id, std::string_view name,
                                     std::string_view fingerprint,
                                     std::size_t num_traces,
                                     std::size_t num_events,
                                     const RequestContext& ctx = {});
std::string BuildMatchResponse(std::uint64_t id, const MatchReplyData& data,
                               const RequestContext& ctx = {});
/// Telemetry rides as a heartbeat-style single-line object under
/// `"telemetry"` (histograms reduced to percentiles, so the response
/// stays one line). When `windowed` is non-null its series are folded
/// in with a `_w60` suffix — see TelemetryToHeartbeatLine.
std::string BuildStatsResponse(std::uint64_t id,
                               const obs::TelemetrySnapshot& snapshot,
                               double uptime_ms,
                               const RequestContext& ctx = {},
                               const obs::TelemetrySnapshot* windowed =
                                   nullptr);
std::string BuildDrainResponse(std::uint64_t id, std::size_t in_flight,
                               std::size_t queued,
                               const RequestContext& ctx = {});
/// The Prometheus exposition text travels JSON-escaped under
/// `"exposition"` (it is multi-line; the response line stays one line).
std::string BuildMetricsResponse(std::uint64_t id, std::string_view exposition,
                                 const RequestContext& ctx = {});
std::string BuildErrorResponse(std::uint64_t id, RequestOp op, ErrorCode code,
                               std::string_view message,
                               double retry_after_ms = 0.0,
                               const RequestContext& ctx = {});

/// Client-side view of one response line (`ParseResponse` of whatever
/// builder produced it). Fields beyond the envelope stay in `body` for
/// typed accessors at the call site.
struct ServeResponse {
  std::uint64_t id = 0;
  std::string op;
  std::uint64_t request_id = 0;  ///< Server-assigned; 0 when absent.
  std::string correlation_id;    ///< Echo of the client's, if any.
  bool ok = false;
  std::string error_code;     ///< Empty when ok.
  std::string error_message;  ///< Empty when ok.
  double retry_after_ms = 0.0;
  obs::JsonValue body;        ///< The whole response object.
  std::string raw;            ///< The response line as received.
};

Result<ServeResponse> ParseResponse(std::string_view line);

}  // namespace hematch::serve

#endif  // HEMATCH_SERVE_PROTOCOL_H_
