#include "serve/fingerprint.h"

#include <algorithm>

#include "freq/pattern_key.h"

namespace hematch::serve {

namespace {

std::uint64_t MixString(std::uint64_t h, const std::string& s) {
  // FNV-1a over the bytes, then a full-avalanche fold into the running
  // hash; the explicit length token keeps ["ab","c"] != ["a","bc"].
  std::uint64_t sh = 1469598103934665603ull;
  for (unsigned char c : s) {
    sh = (sh ^ c) * 1099511628211ull;
  }
  h = hematch::internal::MixBits(h ^ sh);
  return hematch::internal::MixBits(h ^ s.size());
}

}  // namespace

std::uint64_t FingerprintLog(const EventLog& log) {
  std::uint64_t h = 0x8e7d3a2c5b1f9e04ull;
  const EventDictionary& dict = log.dictionary();
  h = hematch::internal::MixBits(h ^ dict.size());
  for (EventId id = 0; id < dict.size(); ++id) {
    h = MixString(h, dict.Name(id));
  }
  h = hematch::internal::MixBits(h ^ log.num_traces());
  for (const Trace& trace : log.traces()) {
    h = hematch::internal::MixBits(h ^ trace.size());
    for (EventId id : trace) {
      h = hematch::internal::MixBits(h ^ (id + 0x9e3779b97f4a7c15ull));
    }
  }
  return h;
}

std::uint64_t FingerprintPatternTexts(std::vector<std::string> texts) {
  std::sort(texts.begin(), texts.end());
  std::uint64_t h = 0x51b8c3a9d47e2f06ull;
  h = hematch::internal::MixBits(h ^ texts.size());
  for (const std::string& t : texts) {
    h = MixString(h, t);
  }
  return h;
}

std::string FingerprintHex(std::uint64_t fp) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[fp & 0xF];
    fp >>= 4;
  }
  return out;
}

}  // namespace hematch::serve
