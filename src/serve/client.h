#ifndef HEMATCH_SERVE_CLIENT_H_
#define HEMATCH_SERVE_CLIENT_H_

/// \file
/// Bundled client for the `hematch.serve.v1` protocol: one TCP
/// connection, synchronous call/response, with the robustness knobs a
/// caller needs against a server under stress — per-call read
/// timeouts, bounded reconnect-with-backoff on connection failures,
/// and optional automatic retry of `REJECTED_OVERLOAD` honoring the
/// server's `retry_after_ms` hint. Concurrency is by connection: open
/// one `ServeClient` per in-flight stream (see bench/bench_serve.cc).

#include <cstdint>
#include <string>

#include "common/result.h"
#include "log/event_log.h"
#include "serve/protocol.h"

namespace hematch::serve {

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// TCP connect timeout.
  double connect_timeout_ms = 2000.0;
  /// Per-call ceiling on waiting for the response line. Should exceed
  /// the request deadline — the server answers budget-exhausted
  /// requests at their deadline, so a shorter read timeout gives up on
  /// answers that were coming.
  double read_timeout_ms = 30000.0;
  /// Reconnect attempts after a connection-level failure (refused,
  /// reset, EOF mid-call). The failing call is retried after each
  /// reconnect; 0 = fail fast.
  int max_retries = 2;
  /// Backoff before retry `k` is `backoff_ms * k` (linear).
  double backoff_ms = 100.0;
  /// When true, `REJECTED_OVERLOAD` responses are retried (up to
  /// `max_retries`) after sleeping the server's `retry_after_ms` hint
  /// (or the backoff when absent). Off by default: under overload,
  /// backing off to the caller is usually the right default.
  bool retry_overload = false;
  /// Opaque correlation id attached to every request this client
  /// sends; the server echoes it in responses and its access log.
  /// Empty = none.
  std::string correlation_id;
};

class ServeClient {
 public:
  explicit ServeClient(ClientOptions options);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Explicit connect (Call connects lazily otherwise).
  Status Connect();
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Sends one request line and waits for its response line, applying
  /// the retry policy. The returned response may still be an
  /// application error (`!resp.ok`) — retries cover transport failures
  /// and (optionally) overload rejections only.
  Result<ServeResponse> Call(const std::string& request_line);

  /// Typed wrappers.
  Result<ServeResponse> Ping();
  Result<ServeResponse> RegisterLog(const std::string& name,
                                    const EventLog& log);
  /// Registers raw log text (already in `format`).
  Result<ServeResponse> RegisterLogText(const std::string& name,
                                        const std::string& format,
                                        const std::string& content);
  Result<ServeResponse> Match(const MatchRequestSpec& spec);
  Result<ServeResponse> Stats();
  Result<ServeResponse> Drain();
  /// The Prometheus exposition text (response body key "exposition").
  Result<ServeResponse> Metrics();

 private:
  Status SendLine(const std::string& line);
  Result<std::string> ReadLine();

  ClientOptions options_;
  int fd_ = -1;
  std::string read_buffer_;
  std::uint64_t next_id_ = 1;
};

}  // namespace hematch::serve

#endif  // HEMATCH_SERVE_CLIENT_H_
