#ifndef HEMATCH_LOG_EVENT_DICTIONARY_H_
#define HEMATCH_LOG_EVENT_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace hematch {

/// Dense integer identifier of an event type within one log's vocabulary.
/// Event names are opaque strings (the whole premise of the paper); every
/// algorithm works on `EventId`s and only I/O layers touch names.
using EventId = std::uint32_t;

/// Sentinel for "no event".
inline constexpr EventId kInvalidEventId = ~EventId{0};

/// Bidirectional mapping between opaque event names and dense `EventId`s.
///
/// Ids are assigned in first-seen order, which the experiment harness
/// relies on: the paper's "event set with size x is determined by
/// projecting the first x events appearing in the dataset" becomes
/// "keep ids < x".
class EventDictionary {
 public:
  EventDictionary() = default;

  /// Returns the id of `name`, interning it if unseen.
  EventId Intern(std::string_view name);

  /// Returns the id of `name` or an error if it was never interned.
  Result<EventId> Lookup(std::string_view name) const;

  /// True if `name` has been interned.
  bool Contains(std::string_view name) const;

  /// Returns the name for `id`. Requires `id < size()`.
  const std::string& Name(EventId id) const;

  /// Number of distinct events.
  std::size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

  /// All names in id order.
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, EventId> ids_;
};

}  // namespace hematch

#endif  // HEMATCH_LOG_EVENT_DICTIONARY_H_
