#ifndef HEMATCH_LOG_LOG_IO_H_
#define HEMATCH_LOG_LOG_IO_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "log/event_log.h"

namespace hematch {

/// Event-log (de)serialization. Two formats are supported:
///
/// 1. **Trace-per-line** (`.tr`): each line is one trace, events separated
///    by whitespace; `#`-prefixed lines are comments. This is the library's
///    native interchange format.
///
/// 2. **Event-per-row CSV** (`.csv`): a header line naming at least the
///    columns `case` and `event` (a `timestamp` column is honored if
///    present), then one row per event occurrence. Rows are grouped by
///    case id; within a case, rows are ordered by timestamp when a
///    timestamp column exists (stable sort, so ties keep file order) and
///    by file order otherwise. This mirrors how logs come out of ERP/OA
///    systems, the paper's data source.
///
/// Timestamps are parsed as ordered opaque strings (ISO-8601 sorts
/// correctly as text) or integers; mixing the two within one case is
/// rejected.

/// Parses a trace-per-line log from `input`.
Result<EventLog> ReadTraceLog(std::istream& input);

/// Parses a trace-per-line log from the file at `path`.
Result<EventLog> ReadTraceLogFile(const std::string& path);

/// Writes `log` in trace-per-line format.
Status WriteTraceLog(const EventLog& log, std::ostream& output);

/// Parses an event-per-row CSV log from `input`.
Result<EventLog> ReadCsvLog(std::istream& input);

/// Parses an event-per-row CSV log from the file at `path`.
Result<EventLog> ReadCsvLogFile(const std::string& path);

/// Writes `log` as event-per-row CSV with synthetic increasing timestamps.
Status WriteCsvLog(const EventLog& log, std::ostream& output);

}  // namespace hematch

#endif  // HEMATCH_LOG_LOG_IO_H_
