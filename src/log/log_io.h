#ifndef HEMATCH_LOG_LOG_IO_H_
#define HEMATCH_LOG_LOG_IO_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "log/event_log.h"

namespace hematch {

/// Event-log (de)serialization. Two formats are supported:
///
/// 1. **Trace-per-line** (`.tr`): each line is one trace, events separated
///    by whitespace; `#`-prefixed lines are comments. This is the library's
///    native interchange format.
///
/// 2. **Event-per-row CSV** (`.csv`): a header line naming at least the
///    columns `case` and `event` (a `timestamp` column is honored if
///    present), then one row per event occurrence. Rows are grouped by
///    case id; within a case, rows are ordered by timestamp when a
///    timestamp column exists (stable sort, so ties keep file order) and
///    by file order otherwise. This mirrors how logs come out of ERP/OA
///    systems, the paper's data source.
///
/// Timestamps are parsed as ordered opaque strings (ISO-8601 sorts
/// correctly as text) or integers; mixing the two within one case is
/// rejected.

/// Parses a trace-per-line log from `input`.
Result<EventLog> ReadTraceLog(std::istream& input);

/// Parses a trace-per-line log from the file at `path`.
Result<EventLog> ReadTraceLogFile(const std::string& path);

/// Writes `log` in trace-per-line format.
Status WriteTraceLog(const EventLog& log, std::ostream& output);

/// How forgiving the CSV reader is about malformed rows, mirroring
/// XesReadOptions: real exports carry stray BOMs, CRLF line endings,
/// ragged rows (a killed export writes half a line), and rows with an
/// empty case or event cell. A UTF-8 BOM on the header and CR line
/// endings are tolerated in both modes (they are valid encodings, not
/// defects).
struct CsvReadOptions {
  /// Strict mode fails with ParseError on any defective row: too few
  /// fields to reach the case/event columns, or an empty case or event
  /// cell. Lenient mode (default) salvages instead — a ragged row that
  /// still reaches both the case and event columns is kept (missing
  /// timestamp treated as absent), any other defective row is skipped —
  /// and counts every such row in CsvReadStats::salvaged_rows (surfaced
  /// as the `log.csv_salvaged` telemetry counter and a `salvaged` span
  /// arg).
  bool strict = false;
};

/// What the lenient CSV reader had to forgive.
struct CsvReadStats {
  /// Defective data rows that were salvaged (kept without a timestamp)
  /// or skipped instead of failing the parse. Always 0 in strict mode.
  std::size_t salvaged_rows = 0;
};

/// Parses an event-per-row CSV log from `input`.
Result<EventLog> ReadCsvLog(std::istream& input,
                            const CsvReadOptions& options = {},
                            CsvReadStats* stats = nullptr);

/// Parses an event-per-row CSV log from the file at `path`.
Result<EventLog> ReadCsvLogFile(const std::string& path,
                                const CsvReadOptions& options = {},
                                CsvReadStats* stats = nullptr);

/// Writes `log` as event-per-row CSV with synthetic increasing timestamps.
Status WriteCsvLog(const EventLog& log, std::ostream& output);

}  // namespace hematch

#endif  // HEMATCH_LOG_LOG_IO_H_
