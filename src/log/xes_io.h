#ifndef HEMATCH_LOG_XES_IO_H_
#define HEMATCH_LOG_XES_IO_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "log/event_log.h"

namespace hematch {

/// XES (IEEE 1849, the standard process-mining event-log interchange
/// format) support — the practical route by which real ERP/BPM logs
/// would reach this library.
///
/// Reading extracts, per `<trace>`, the sequence of `<event>` elements
/// ordered as they appear (XES events are stored in order; an explicit
/// `time:timestamp` attribute, when present on every event of a trace,
/// re-sorts that trace). The event name is the `concept:name` string
/// attribute; events without one are skipped. Traces with no named
/// events are dropped. All other attributes, extensions, classifiers,
/// and globals are ignored.
///
/// Writing produces a minimal valid XES document with `concept:name`
/// trace and event attributes.

/// Parses an XES document from `input`.
Result<EventLog> ReadXesLog(std::istream& input);

/// Parses the XES file at `path`.
Result<EventLog> ReadXesLogFile(const std::string& path);

/// Writes `log` as minimal XES.
Status WriteXesLog(const EventLog& log, std::ostream& output);

}  // namespace hematch

#endif  // HEMATCH_LOG_XES_IO_H_
