#ifndef HEMATCH_LOG_XES_IO_H_
#define HEMATCH_LOG_XES_IO_H_

#include <cstddef>
#include <iosfwd>
#include <string>

#include "common/result.h"
#include "log/event_log.h"

namespace hematch {

/// XES (IEEE 1849, the standard process-mining event-log interchange
/// format) support — the practical route by which real ERP/BPM logs
/// would reach this library.
///
/// Reading extracts, per `<trace>`, the sequence of `<event>` elements
/// ordered as they appear (XES events are stored in order; an explicit
/// `time:timestamp` attribute, when present on every event of a trace,
/// re-sorts that trace). The event name is the `concept:name` string
/// attribute. Traces with no named events are dropped. All other
/// attributes, extensions, classifiers, and globals are ignored.
///
/// Writing produces a minimal valid XES document with `concept:name`
/// trace and event attributes.

/// How forgiving the XES reader is about malformed input. Real-world
/// exports are frequently truncated (killed jobs, full disks) or carry
/// junk attributes; the default lenient mode salvages every trace that
/// was completely read before the first defect. Either way the reader
/// never crashes on malformed input — defects surface as ParseError
/// Status values or as salvage, never as UB (`xes_fuzz.cc` enforces
/// this continuously).
struct XesReadOptions {
  /// Strict mode fails with ParseError on any structural defect:
  /// truncated documents, mismatched end tags, nested <trace>/<event>
  /// elements, events missing `concept:name`, and name/timestamp
  /// attributes missing their `value`. Lenient mode (default) keeps
  /// the traces completed before the defect, skips unnamed events, and
  /// tolerates mismatched end tags.
  bool strict = false;
  /// Hard ceiling on element nesting depth, guarding stack and memory
  /// against hostile or corrupt inputs. Exceeding it is a ParseError
  /// in strict mode and stops reading (salvaging prior traces) in
  /// lenient mode.
  std::size_t max_depth = 64;
};

/// Parses an XES document from `input`.
Result<EventLog> ReadXesLog(std::istream& input,
                            const XesReadOptions& options = {});

/// Parses the XES file at `path`.
Result<EventLog> ReadXesLogFile(const std::string& path,
                                const XesReadOptions& options = {});

/// Writes `log` as minimal XES.
Status WriteXesLog(const EventLog& log, std::ostream& output);

}  // namespace hematch

#endif  // HEMATCH_LOG_XES_IO_H_
