#ifndef HEMATCH_LOG_PROJECTION_H_
#define HEMATCH_LOG_PROJECTION_H_

#include <cstddef>

#include "log/event_log.h"

namespace hematch {

/// Projects `log` onto its first `num_events` events (by id order, i.e.,
/// first-seen order): every trace keeps only occurrences of those events,
/// in their original relative order. Traces that become empty are dropped
/// but the trace count used for frequency normalization downstream is the
/// projected log's trace count, matching the paper's experiment setup
/// ("an event set with size x is determined by projecting the first x
/// events appearing in the dataset").
EventLog ProjectFirstEvents(const EventLog& log, std::size_t num_events);

/// Projects `log` onto an arbitrary event subset: `keep[v]` selects event
/// `v`. Kept events are re-interned in ascending old-id order; traces keep
/// only occurrences of kept events; empty traces are dropped. When
/// `old_to_new` is non-null it receives the id translation
/// (kInvalidEventId for dropped events).
EventLog ProjectEventSubset(const EventLog& log, const std::vector<bool>& keep,
                            std::vector<EventId>* old_to_new = nullptr);

/// Keeps the first `num_traces` traces of `log` (the paper's "a number of
/// y traces are determined by selecting the first y traces"). The
/// vocabulary is kept intact: an event that no longer occurs simply has
/// frequency 0, exactly as in a real log extraction window.
EventLog SelectFirstTraces(const EventLog& log, std::size_t num_traces);

}  // namespace hematch

#endif  // HEMATCH_LOG_PROJECTION_H_
