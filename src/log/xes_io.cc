#include "log/xes_io.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string_view>
#include <vector>

#include "log/xml_parser.h"
#include "obs/trace.h"

namespace hematch {

namespace {

struct XesEvent {
  std::string name;       // concept:name
  std::string timestamp;  // time:timestamp (optional)
};

std::string EscapeXml(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

bool HasAttribute(const XmlParser::Token& token, std::string_view key) {
  for (const auto& [k, v] : token.attributes) {
    if (k == key) {
      return true;
    }
  }
  return false;
}

/// The reader proper: an explicit element stack plus the XES-level
/// state (current trace / current event), so truncation and mismatched
/// tags are detected positively instead of corrupting state.
class XesReader {
 public:
  explicit XesReader(const XesReadOptions& options) : options_(options) {}

  Result<EventLog> Read(std::string_view document) {
    XmlParser parser(document);
    for (;;) {
      Result<XmlParser::Token> token = parser.Next();
      if (!token.ok()) {
        // Malformed XML mid-document (truncated tag, bad entity, ...).
        if (options_.strict) {
          return token.status();
        }
        break;  // Lenient: salvage what was completed.
      }
      if (token->kind == XmlParser::TokenKind::kEnd) {
        if (!stack_.empty() && options_.strict) {
          return Status::ParseError("truncated XES document: <" +
                                    stack_.back() + "> never closed");
        }
        break;
      }
      if (token->kind == XmlParser::TokenKind::kText) {
        continue;  // XES carries data in attributes, not text nodes.
      }
      Status handled = token->kind == XmlParser::TokenKind::kStartElement
                           ? HandleStart(*token, parser.offset())
                           : HandleEnd(*token);
      if (!handled.ok()) {
        return handled;
      }
      if (stopped_) {
        break;  // Lenient depth overflow: keep the traces so far.
      }
    }
    if (!saw_log_) {
      return Status::ParseError("no <log> element found (not an XES file?)");
    }
    return std::move(log_);
  }

 private:
  static constexpr std::size_t kNone = ~std::size_t{0};

  bool in_trace() const { return trace_depth_ != kNone; }
  bool in_event() const { return event_depth_ != kNone; }

  Status HandleStart(const XmlParser::Token& token, std::size_t offset) {
    if (stack_.size() >= options_.max_depth) {
      if (options_.strict) {
        return Status::ParseError(
            "XES nesting deeper than " + std::to_string(options_.max_depth) +
            " elements at offset " + std::to_string(offset));
      }
      stopped_ = true;
      return Status::OK();
    }
    if (token.name == "log") {
      saw_log_ = true;
    } else if (token.name == "trace") {
      if (in_trace()) {
        if (options_.strict) {
          return Status::ParseError("nested <trace> elements");
        }
        // Lenient: treat the inner <trace> as an opaque container.
      } else {
        trace_depth_ = stack_.size();
        trace_events_.clear();
      }
    } else if (token.name == "event") {
      if (!in_trace()) {
        return Status::ParseError("<event> outside a <trace>");
      }
      if (in_event()) {
        if (options_.strict) {
          return Status::ParseError("nested <event> elements");
        }
        // Lenient: opaque container; attributes inside won't be at the
        // event's attribute depth, so they are ignored anyway.
      } else {
        event_depth_ = stack_.size();
        current_event_ = XesEvent{};
      }
    } else if (in_event() && stack_.size() == event_depth_ + 1) {
      // A direct child of the <event>: a candidate attribute. Container
      // attributes nested deeper (lists etc.) are ignored.
      const std::string_view key = token.Attribute("key");
      if (token.name == "string" && key == "concept:name") {
        if (options_.strict && !HasAttribute(token, "value")) {
          return Status::ParseError(
              "concept:name attribute without a value");
        }
        current_event_.name = std::string(token.Attribute("value"));
      } else if (token.name == "date" && key == "time:timestamp") {
        if (options_.strict && !HasAttribute(token, "value")) {
          return Status::ParseError(
              "time:timestamp attribute without a value");
        }
        current_event_.timestamp = std::string(token.Attribute("value"));
      }
    }
    stack_.push_back(token.name);
    return Status::OK();
  }

  Status HandleEnd(const XmlParser::Token& token) {
    if (!stack_.empty() && stack_.back() == token.name) {
      return CloseTop();
    }
    if (options_.strict) {
      return Status::ParseError("mismatched end tag </" + token.name +
                                "> (open element is <" +
                                (stack_.empty() ? "none" : stack_.back()) +
                                ">)");
    }
    // Lenient: close up to the matching open element if one exists;
    // a stray end tag with no matching open is ignored.
    const auto match =
        std::find(stack_.rbegin(), stack_.rend(), token.name);
    if (match == stack_.rend()) {
      return Status::OK();
    }
    const std::size_t target = stack_.size() - 1 -
                               (match - stack_.rbegin());
    while (stack_.size() > target) {
      Status closed = CloseTop();
      if (!closed.ok()) {
        return closed;
      }
    }
    return Status::OK();
  }

  /// Pops the innermost element and runs the XES semantics its closure
  /// triggers (event finalized, trace finalized).
  Status CloseTop() {
    stack_.pop_back();
    if (in_event() && stack_.size() == event_depth_) {
      event_depth_ = kNone;
      if (current_event_.name.empty()) {
        if (options_.strict) {
          return Status::ParseError("<event> without a concept:name");
        }
        return Status::OK();  // Lenient: skip unnamed events.
      }
      trace_events_.push_back(std::move(current_event_));
    } else if (in_trace() && stack_.size() == trace_depth_) {
      trace_depth_ = kNone;
      FinalizeTrace();
    }
    return Status::OK();
  }

  void FinalizeTrace() {
    if (trace_events_.empty()) {
      return;  // Traces with no named events are dropped.
    }
    // Re-sort by timestamp only when every event carries one
    // (stable: XES document order breaks ties).
    const bool all_timestamped = std::all_of(
        trace_events_.begin(), trace_events_.end(),
        [](const XesEvent& e) { return !e.timestamp.empty(); });
    if (all_timestamped) {
      std::stable_sort(trace_events_.begin(), trace_events_.end(),
                       [](const XesEvent& a, const XesEvent& b) {
                         return a.timestamp < b.timestamp;
                       });
    }
    std::vector<std::string> names;
    names.reserve(trace_events_.size());
    for (const XesEvent& e : trace_events_) {
      names.push_back(e.name);
    }
    log_.AddTraceByNames(names);
    trace_events_.clear();
  }

  const XesReadOptions options_;
  EventLog log_;
  std::vector<std::string> stack_;
  bool saw_log_ = false;
  bool stopped_ = false;
  std::size_t trace_depth_ = kNone;
  std::size_t event_depth_ = kNone;
  std::vector<XesEvent> trace_events_;
  XesEvent current_event_;
};

}  // namespace

Result<EventLog> ReadXesLog(std::istream& input,
                            const XesReadOptions& options) {
  // Ambient recorder: ingestion signatures predate tracing (obs/trace.h).
  obs::ScopedSpan span(obs::AmbientTraceRecorder(), "log.read_xes", "log");
  std::ostringstream buffer;
  buffer << input.rdbuf();
  if (input.bad()) {
    return Status::ParseError("I/O failure while reading XES log");
  }
  const std::string document = buffer.str();
  span.AddArg("bytes", static_cast<double>(document.size()));
  Result<EventLog> log = XesReader(options).Read(document);
  if (log.ok()) {
    span.AddArg("traces", static_cast<double>(log->num_traces()));
    span.AddArg("events", static_cast<double>(log->num_events()));
  }
  return log;
}

Result<EventLog> ReadXesLogFile(const std::string& path,
                                const XesReadOptions& options) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open XES file: " + path);
  }
  return ReadXesLog(file, options);
}

Status WriteXesLog(const EventLog& log, std::ostream& output) {
  output << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
         << "<log xes.version=\"1.0\" xes.features=\"\">\n"
         << "  <extension name=\"Concept\" prefix=\"concept\" "
            "uri=\"http://www.xes-standard.org/concept.xesext\"/>\n";
  for (std::size_t t = 0; t < log.num_traces(); ++t) {
    output << "  <trace>\n"
           << "    <string key=\"concept:name\" value=\"t" << t << "\"/>\n";
    for (EventId id : log.traces()[t]) {
      output << "    <event>\n"
             << "      <string key=\"concept:name\" value=\""
             << EscapeXml(log.dictionary().Name(id)) << "\"/>\n"
             << "    </event>\n";
    }
    output << "  </trace>\n";
  }
  output << "</log>\n";
  if (!output) {
    return Status::Internal("I/O failure while writing XES log");
  }
  return Status::OK();
}

}  // namespace hematch
