#include "log/xes_io.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "log/xml_parser.h"

namespace hematch {

namespace {

struct XesEvent {
  std::string name;       // concept:name
  std::string timestamp;  // time:timestamp (optional)
};

std::string EscapeXml(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

Result<EventLog> ReadXesLog(std::istream& input) {
  std::ostringstream buffer;
  buffer << input.rdbuf();
  if (input.bad()) {
    return Status::ParseError("I/O failure while reading XES log");
  }
  const std::string document = buffer.str();
  XmlParser parser(document);

  EventLog log;
  bool saw_log = false;
  bool in_trace = false;
  bool in_event = false;
  std::vector<XesEvent> trace_events;
  XesEvent current_event;
  // Depth of nested container attributes inside an <event> (lists etc.);
  // attribute elements nested deeper than the event level are ignored.
  int event_attr_depth = 0;

  for (;;) {
    HEMATCH_ASSIGN_OR_RETURN(XmlParser::Token token, parser.Next());
    if (token.kind == XmlParser::TokenKind::kEnd) {
      break;
    }
    if (token.kind == XmlParser::TokenKind::kText) {
      continue;  // XES carries data in attributes, not text nodes.
    }
    if (token.kind == XmlParser::TokenKind::kStartElement) {
      if (token.name == "log") {
        saw_log = true;
      } else if (token.name == "trace") {
        if (in_trace) {
          return Status::ParseError("nested <trace> elements");
        }
        in_trace = true;
        trace_events.clear();
      } else if (token.name == "event") {
        if (!in_trace) {
          return Status::ParseError("<event> outside a <trace>");
        }
        if (in_event) {
          return Status::ParseError("nested <event> elements");
        }
        in_event = true;
        current_event = XesEvent{};
        event_attr_depth = 0;
      } else if (in_event) {
        ++event_attr_depth;
        if (event_attr_depth == 1) {
          const std::string_view key = token.Attribute("key");
          if (token.name == "string" && key == "concept:name") {
            current_event.name = std::string(token.Attribute("value"));
          } else if (token.name == "date" && key == "time:timestamp") {
            current_event.timestamp = std::string(token.Attribute("value"));
          }
        }
      }
      continue;
    }
    // End element.
    if (token.name == "event") {
      in_event = false;
      if (!current_event.name.empty()) {
        trace_events.push_back(std::move(current_event));
      }
    } else if (token.name == "trace") {
      in_trace = false;
      if (!trace_events.empty()) {
        // Re-sort by timestamp only when every event carries one
        // (stable: XES document order breaks ties).
        const bool all_timestamped = std::all_of(
            trace_events.begin(), trace_events.end(),
            [](const XesEvent& e) { return !e.timestamp.empty(); });
        if (all_timestamped) {
          std::stable_sort(trace_events.begin(), trace_events.end(),
                           [](const XesEvent& a, const XesEvent& b) {
                             return a.timestamp < b.timestamp;
                           });
        }
        std::vector<std::string> names;
        names.reserve(trace_events.size());
        for (const XesEvent& e : trace_events) {
          names.push_back(e.name);
        }
        log.AddTraceByNames(names);
      }
    } else if (in_event && token.name != "log") {
      if (event_attr_depth > 0) {
        --event_attr_depth;
      }
    }
  }
  if (!saw_log) {
    return Status::ParseError("no <log> element found (not an XES file?)");
  }
  return log;
}

Result<EventLog> ReadXesLogFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open XES file: " + path);
  }
  return ReadXesLog(file);
}

Status WriteXesLog(const EventLog& log, std::ostream& output) {
  output << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
         << "<log xes.version=\"1.0\" xes.features=\"\">\n"
         << "  <extension name=\"Concept\" prefix=\"concept\" "
            "uri=\"http://www.xes-standard.org/concept.xesext\"/>\n";
  for (std::size_t t = 0; t < log.num_traces(); ++t) {
    output << "  <trace>\n"
           << "    <string key=\"concept:name\" value=\"t" << t << "\"/>\n";
    for (EventId id : log.traces()[t]) {
      output << "    <event>\n"
             << "      <string key=\"concept:name\" value=\""
             << EscapeXml(log.dictionary().Name(id)) << "\"/>\n"
             << "    </event>\n";
    }
    output << "  </trace>\n";
  }
  output << "</log>\n";
  if (!output) {
    return Status::Internal("I/O failure while writing XES log");
  }
  return Status::OK();
}

}  // namespace hematch
