#include "log/log_io.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/strings.h"
#include "obs/trace.h"

namespace hematch {

namespace {

// One parsed CSV row, before grouping into traces.
struct CsvRow {
  std::string case_id;
  std::string event;
  std::string timestamp;  // Empty when the file has no timestamp column.
  std::size_t file_order = 0;
};

bool IsAllDigits(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isdigit(c) != 0; });
}

// Orders timestamps: numerically when both sides are integers, otherwise
// lexicographically (correct for ISO-8601).
bool TimestampLess(const std::string& a, const std::string& b) {
  if (IsAllDigits(a) && IsAllDigits(b)) {
    if (a.size() != b.size()) return a.size() < b.size();
  }
  return a < b;
}

std::string LowerAscii(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

Result<EventLog> ReadTraceLog(std::istream& input) {
  // Ingestion predates tracing, so the span recorder arrives ambiently
  // (see obs/trace.h) instead of through a signature change.
  obs::ScopedSpan span(obs::AmbientTraceRecorder(), "log.read_trace", "log");
  EventLog log;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(input, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') {
      continue;
    }
    std::vector<std::string> names;
    std::istringstream fields{std::string(stripped)};
    std::string name;
    while (fields >> name) {
      names.push_back(name);
    }
    log.AddTraceByNames(names);
  }
  if (input.bad()) {
    return Status::ParseError("I/O failure while reading trace log");
  }
  span.AddArg("traces", static_cast<double>(log.num_traces()));
  span.AddArg("events", static_cast<double>(log.num_events()));
  return log;
}

Result<EventLog> ReadTraceLogFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open trace log file: " + path);
  }
  return ReadTraceLog(file);
}

Status WriteTraceLog(const EventLog& log, std::ostream& output) {
  output << "# hematch trace log: " << log.num_traces() << " traces, "
         << log.num_events() << " events\n";
  for (const Trace& trace : log.traces()) {
    output << log.TraceToString(trace) << '\n';
  }
  if (!output) {
    return Status::Internal("I/O failure while writing trace log");
  }
  return Status::OK();
}

Result<EventLog> ReadCsvLog(std::istream& input, const CsvReadOptions& options,
                            CsvReadStats* stats) {
  obs::ScopedSpan span(obs::AmbientTraceRecorder(), "log.read_csv", "log");
  CsvReadStats local_stats;
  if (stats == nullptr) {
    stats = &local_stats;
  }
  *stats = CsvReadStats{};
  std::string line;
  if (!std::getline(input, line)) {
    return Status::ParseError("CSV log is empty (missing header)");
  }
  // A UTF-8 byte-order mark on the header and CR line endings are valid
  // encodings (Windows exports), not defects: strip them in both modes.
  if (line.size() >= 3 && line[0] == '\xEF' && line[1] == '\xBB' &&
      line[2] == '\xBF') {
    line.erase(0, 3);
  }
  auto strip_cr = [](std::string& text) {
    if (!text.empty() && text.back() == '\r') {
      text.pop_back();
    }
  };
  strip_cr(line);
  const std::vector<std::string> header = SplitString(line, ',');
  int case_col = -1;
  int event_col = -1;
  int time_col = -1;
  for (std::size_t i = 0; i < header.size(); ++i) {
    const std::string name = LowerAscii(StripWhitespace(header[i]));
    if (name == "case" || name == "case_id" || name == "trace" ||
        name == "trace_id") {
      case_col = static_cast<int>(i);
    } else if (name == "event" || name == "activity" || name == "event_name") {
      event_col = static_cast<int>(i);
    } else if (name == "timestamp" || name == "time" || name == "ts") {
      time_col = static_cast<int>(i);
    }
  }
  if (case_col < 0 || event_col < 0) {
    return Status::ParseError(
        "CSV header must contain 'case' and 'event' columns; got: " + line);
  }

  std::vector<CsvRow> rows;
  std::size_t line_no = 1;
  while (std::getline(input, line)) {
    ++line_no;
    strip_cr(line);
    if (StripWhitespace(line).empty()) {
      continue;
    }
    const std::vector<std::string> fields = SplitString(line, ',');
    const std::size_t needed = static_cast<std::size_t>(
        std::max({case_col, event_col, time_col}) + 1);
    // A ragged row that still reaches the case and event columns only
    // lost its timestamp: salvageable. Anything shorter is not a row.
    const std::size_t required = static_cast<std::size_t>(
        std::max(case_col, event_col) + 1);
    bool defective = false;
    if (fields.size() < needed) {
      if (options.strict) {
        return Status::ParseError("CSV line " + std::to_string(line_no) +
                                  " has too few fields: " + line);
      }
      defective = true;
      if (fields.size() < required) {
        ++stats->salvaged_rows;
        continue;
      }
    }
    CsvRow row;
    row.case_id = std::string(StripWhitespace(fields[case_col]));
    row.event = std::string(StripWhitespace(fields[event_col]));
    if (time_col >= 0 &&
        static_cast<std::size_t>(time_col) < fields.size()) {
      row.timestamp = std::string(StripWhitespace(fields[time_col]));
    }
    row.file_order = rows.size();
    if (row.case_id.empty() || row.event.empty()) {
      if (options.strict) {
        return Status::ParseError("CSV line " + std::to_string(line_no) +
                                  " has an empty case or event field");
      }
      ++stats->salvaged_rows;
      continue;
    }
    if (defective) {
      ++stats->salvaged_rows;
    }
    rows.push_back(std::move(row));
  }
  if (input.bad()) {
    return Status::ParseError("I/O failure while reading CSV log");
  }

  // Group rows by case, preserving first-appearance order of cases so the
  // resulting trace order (and thus event first-seen order) is stable.
  std::map<std::string, std::size_t> case_index;
  std::vector<std::vector<CsvRow>> grouped;
  for (CsvRow& row : rows) {
    auto [it, inserted] = case_index.emplace(row.case_id, grouped.size());
    if (inserted) {
      grouped.emplace_back();
    }
    grouped[it->second].push_back(std::move(row));
  }

  EventLog log;
  for (std::vector<CsvRow>& group : grouped) {
    std::stable_sort(group.begin(), group.end(),
                     [](const CsvRow& a, const CsvRow& b) {
                       return TimestampLess(a.timestamp, b.timestamp);
                     });
    std::vector<std::string> names;
    names.reserve(group.size());
    for (const CsvRow& row : group) {
      names.push_back(row.event);
    }
    log.AddTraceByNames(names);
  }
  span.AddArg("traces", static_cast<double>(log.num_traces()));
  span.AddArg("events", static_cast<double>(log.num_events()));
  span.AddArg("salvaged", static_cast<double>(stats->salvaged_rows));
  return log;
}

Result<EventLog> ReadCsvLogFile(const std::string& path,
                                const CsvReadOptions& options,
                                CsvReadStats* stats) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open CSV log file: " + path);
  }
  return ReadCsvLog(file, options, stats);
}

Status WriteCsvLog(const EventLog& log, std::ostream& output) {
  output << "case,event,timestamp\n";
  std::size_t ts = 0;
  for (std::size_t i = 0; i < log.num_traces(); ++i) {
    for (EventId id : log.traces()[i]) {
      output << "t" << i << ',' << log.dictionary().Name(id) << ',' << ts++
             << '\n';
    }
  }
  if (!output) {
    return Status::Internal("I/O failure while writing CSV log");
  }
  return Status::OK();
}

}  // namespace hematch
