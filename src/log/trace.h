#ifndef HEMATCH_LOG_TRACE_H_
#define HEMATCH_LOG_TRACE_H_

#include <vector>

#include "log/event_dictionary.h"

namespace hematch {

/// A trace is a finite sequence of events ordered by occurrence timestamp
/// (the timestamps themselves are not needed by any algorithm in the paper;
/// only the induced order matters, so we store just the sequence).
using Trace = std::vector<EventId>;

}  // namespace hematch

#endif  // HEMATCH_LOG_TRACE_H_
