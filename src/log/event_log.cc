#include "log/event_log.h"

#include "common/check.h"

namespace hematch {

void EventLog::AddTrace(Trace trace) {
  for (EventId id : trace) {
    HEMATCH_CHECK(id < dict_.size(), "trace references an unknown event id");
  }
  traces_.push_back(std::move(trace));
}

void EventLog::AddTraceByNames(const std::vector<std::string>& names) {
  Trace trace;
  trace.reserve(names.size());
  for (const std::string& name : names) {
    trace.push_back(dict_.Intern(name));
  }
  traces_.push_back(std::move(trace));
}

std::size_t EventLog::TotalLength() const {
  std::size_t total = 0;
  for (const Trace& trace : traces_) {
    total += trace.size();
  }
  return total;
}

std::string EventLog::TraceToString(const Trace& trace) const {
  std::string out;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i > 0) {
      out += ' ';
    }
    out += dict_.Name(trace[i]);
  }
  return out;
}

}  // namespace hematch
