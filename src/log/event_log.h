#ifndef HEMATCH_LOG_EVENT_LOG_H_
#define HEMATCH_LOG_EVENT_LOG_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "log/event_dictionary.h"
#include "log/trace.h"

namespace hematch {

/// An event log: a collection of traces over one vocabulary of events.
///
/// This is the central data container of the library (Section 2.1 of the
/// paper). The dictionary is owned by the log; traces store dense
/// `EventId`s, so all downstream statistics (dependency graph, pattern
/// frequencies, inverted indices) are integer-indexed.
class EventLog {
 public:
  EventLog() = default;

  /// Deep copies are meaningful (projection produces new logs) and cheap
  /// relative to the matching algorithms; moves are supported for builders.
  EventLog(const EventLog&) = default;
  EventLog& operator=(const EventLog&) = default;
  EventLog(EventLog&&) = default;
  EventLog& operator=(EventLog&&) = default;

  /// Appends a trace of already-interned event ids.
  /// All ids must be valid for this log's dictionary.
  void AddTrace(Trace trace);

  /// Interns `names` in order and appends the resulting trace.
  void AddTraceByNames(const std::vector<std::string>& names);

  /// Interns an event name without requiring it to occur in a trace
  /// (useful for declaring the vocabulary up front so that id order is
  /// controlled by the caller, not by trace order).
  EventId InternEvent(std::string_view name) { return dict_.Intern(name); }

  const EventDictionary& dictionary() const { return dict_; }
  EventDictionary& mutable_dictionary() { return dict_; }

  const std::vector<Trace>& traces() const { return traces_; }
  std::size_t num_traces() const { return traces_.size(); }
  std::size_t num_events() const { return dict_.size(); }
  bool empty() const { return traces_.empty(); }

  /// Total number of event occurrences across all traces.
  std::size_t TotalLength() const;

  /// Renders one trace as space-separated event names (debugging / docs).
  std::string TraceToString(const Trace& trace) const;

 private:
  EventDictionary dict_;
  std::vector<Trace> traces_;
};

}  // namespace hematch

#endif  // HEMATCH_LOG_EVENT_LOG_H_
