#include "log/log_stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hematch {

namespace {

// Binary entropy in bits; H(0) = H(1) = 0.
double BinaryEntropy(double q) {
  if (q <= 0.0 || q >= 1.0) {
    return 0.0;
  }
  return -q * std::log2(q) - (1.0 - q) * std::log2(1.0 - q);
}

}  // namespace

LogStats ComputeLogStats(const EventLog& log) {
  LogStats stats;
  stats.num_traces = log.num_traces();
  stats.num_events = log.num_events();
  stats.support.assign(log.num_events(), 0);
  stats.frequency.assign(log.num_events(), 0.0);
  stats.occurrence_entropy.assign(log.num_events(), 0.0);

  stats.min_trace_length = std::numeric_limits<std::size_t>::max();
  std::vector<bool> seen(log.num_events(), false);
  for (const Trace& trace : log.traces()) {
    stats.total_length += trace.size();
    stats.min_trace_length = std::min(stats.min_trace_length, trace.size());
    stats.max_trace_length = std::max(stats.max_trace_length, trace.size());
    std::fill(seen.begin(), seen.end(), false);
    for (EventId id : trace) {
      if (!seen[id]) {
        seen[id] = true;
        ++stats.support[id];
      }
    }
  }
  if (log.num_traces() == 0) {
    stats.min_trace_length = 0;
    return stats;
  }
  stats.mean_trace_length =
      static_cast<double>(stats.total_length) / log.num_traces();
  for (EventId v = 0; v < log.num_events(); ++v) {
    const double q =
        static_cast<double>(stats.support[v]) / log.num_traces();
    stats.frequency[v] = q;
    stats.occurrence_entropy[v] = BinaryEntropy(q);
  }
  return stats;
}

}  // namespace hematch
