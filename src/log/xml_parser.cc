#include "log/xml_parser.h"

#include <cctype>

namespace hematch {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == ':';
}

bool IsNameChar(char c) {
  return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) != 0 ||
         c == '-' || c == '.';
}

}  // namespace

std::string_view XmlParser::Token::Attribute(std::string_view key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) {
      return v;
    }
  }
  return std::string_view();
}

XmlParser::XmlParser(std::string_view document) : doc_(document) {}

Status XmlParser::Error(const std::string& message) const {
  return Status::ParseError("XML error at offset " + std::to_string(pos_) +
                            ": " + message);
}

void XmlParser::SkipWhitespace() {
  while (pos_ < doc_.size() &&
         std::isspace(static_cast<unsigned char>(doc_[pos_])) != 0) {
    ++pos_;
  }
}

bool XmlParser::SkipMisc() {
  if (pos_ + 1 >= doc_.size() || doc_[pos_] != '<') {
    return false;
  }
  // Comment: <!-- ... -->
  if (doc_.compare(pos_, 4, "<!--") == 0) {
    const std::size_t end = doc_.find("-->", pos_ + 4);
    pos_ = end == std::string_view::npos ? doc_.size() : end + 3;
    return true;
  }
  // Processing instruction / XML declaration: <? ... ?>
  if (doc_[pos_ + 1] == '?') {
    const std::size_t end = doc_.find("?>", pos_ + 2);
    pos_ = end == std::string_view::npos ? doc_.size() : end + 2;
    return true;
  }
  // DOCTYPE and other declarations: <! ... > (no nested brackets support;
  // XES files do not carry DTDs in practice).
  if (doc_[pos_ + 1] == '!') {
    const std::size_t end = doc_.find('>', pos_ + 2);
    pos_ = end == std::string_view::npos ? doc_.size() : end + 1;
    return true;
  }
  return false;
}

Result<std::string> XmlParser::ReadName() {
  if (pos_ >= doc_.size() || !IsNameStart(doc_[pos_])) {
    return Error("expected a name");
  }
  const std::size_t start = pos_;
  while (pos_ < doc_.size() && IsNameChar(doc_[pos_])) {
    ++pos_;
  }
  return std::string(doc_.substr(start, pos_ - start));
}

Result<std::string> XmlParser::DecodeEntities(std::string_view raw) const {
  std::string out;
  out.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] != '&') {
      out += raw[i];
      continue;
    }
    const std::size_t semi = raw.find(';', i);
    if (semi == std::string_view::npos) {
      return Error("unterminated entity");
    }
    const std::string_view entity = raw.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out += '&';
    } else if (entity == "lt") {
      out += '<';
    } else if (entity == "gt") {
      out += '>';
    } else if (entity == "quot") {
      out += '"';
    } else if (entity == "apos") {
      out += '\'';
    } else if (!entity.empty() && entity[0] == '#') {
      // Numeric character reference; ASCII range only.
      const bool hex = entity.size() > 1 && (entity[1] == 'x');
      long code = 0;
      try {
        code = std::stol(std::string(entity.substr(hex ? 2 : 1)), nullptr,
                         hex ? 16 : 10);
      } catch (...) {
        return Error("bad numeric character reference");
      }
      if (code < 1 || code > 127) {
        return Error("non-ASCII character reference unsupported");
      }
      out += static_cast<char>(code);
    } else {
      return Error("unknown entity '&" + std::string(entity) + ";'");
    }
    i = semi;
  }
  return out;
}

Result<XmlParser::Token> XmlParser::Next() {
  if (!pending_end_.empty()) {
    Token token;
    token.kind = TokenKind::kEndElement;
    token.name = std::move(pending_end_);
    pending_end_.clear();
    return token;
  }

  for (;;) {
    // Collect character data up to the next tag.
    const std::size_t text_start = pos_;
    while (pos_ < doc_.size() && doc_[pos_] != '<') {
      ++pos_;
    }
    const std::string_view raw_text =
        doc_.substr(text_start, pos_ - text_start);
    // Report non-whitespace text.
    bool only_space = true;
    for (char c : raw_text) {
      if (std::isspace(static_cast<unsigned char>(c)) == 0) {
        only_space = false;
        break;
      }
    }
    if (!only_space) {
      Token token;
      token.kind = TokenKind::kText;
      HEMATCH_ASSIGN_OR_RETURN(token.name, DecodeEntities(raw_text));
      return token;
    }
    if (pos_ >= doc_.size()) {
      return Token{};  // kEnd.
    }
    if (SkipMisc()) {
      continue;
    }
    break;
  }

  // At '<' of a real tag.
  ++pos_;
  if (pos_ < doc_.size() && doc_[pos_] == '/') {
    ++pos_;
    Token token;
    token.kind = TokenKind::kEndElement;
    HEMATCH_ASSIGN_OR_RETURN(token.name, ReadName());
    SkipWhitespace();
    if (pos_ >= doc_.size() || doc_[pos_] != '>') {
      return Error("expected '>' after end tag");
    }
    ++pos_;
    return token;
  }

  Token token;
  token.kind = TokenKind::kStartElement;
  HEMATCH_ASSIGN_OR_RETURN(token.name, ReadName());
  for (;;) {
    SkipWhitespace();
    if (pos_ >= doc_.size()) {
      return Error("unterminated start tag");
    }
    if (doc_[pos_] == '>') {
      ++pos_;
      return token;
    }
    if (doc_[pos_] == '/') {
      if (pos_ + 1 >= doc_.size() || doc_[pos_ + 1] != '>') {
        return Error("expected '/>' in self-closing tag");
      }
      pos_ += 2;
      pending_end_ = token.name;  // Synthesize the matching end element.
      return token;
    }
    // Attribute.
    HEMATCH_ASSIGN_OR_RETURN(std::string attr_name, ReadName());
    SkipWhitespace();
    if (pos_ >= doc_.size() || doc_[pos_] != '=') {
      return Error("expected '=' after attribute name");
    }
    ++pos_;
    SkipWhitespace();
    if (pos_ >= doc_.size() || (doc_[pos_] != '"' && doc_[pos_] != '\'')) {
      return Error("expected quoted attribute value");
    }
    const char quote = doc_[pos_++];
    const std::size_t value_start = pos_;
    while (pos_ < doc_.size() && doc_[pos_] != quote) {
      ++pos_;
    }
    if (pos_ >= doc_.size()) {
      return Error("unterminated attribute value");
    }
    HEMATCH_ASSIGN_OR_RETURN(
        std::string value,
        DecodeEntities(doc_.substr(value_start, pos_ - value_start)));
    ++pos_;  // Closing quote.
    token.attributes.emplace_back(std::move(attr_name), std::move(value));
  }
}

}  // namespace hematch
