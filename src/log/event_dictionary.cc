#include "log/event_dictionary.h"

#include "common/check.h"

namespace hematch {

EventId EventDictionary::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) {
    return it->second;
  }
  const EventId id = static_cast<EventId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

Result<EventId> EventDictionary::Lookup(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) {
    return Status::NotFound("unknown event name: " + std::string(name));
  }
  return it->second;
}

bool EventDictionary::Contains(std::string_view name) const {
  return ids_.find(std::string(name)) != ids_.end();
}

const std::string& EventDictionary::Name(EventId id) const {
  HEMATCH_CHECK(id < names_.size(), "event id out of range");
  return names_[id];
}

}  // namespace hematch
