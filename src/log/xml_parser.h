#ifndef HEMATCH_LOG_XML_PARSER_H_
#define HEMATCH_LOG_XML_PARSER_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace hematch {

/// A minimal, dependency-free XML pull parser — just enough for XES
/// event logs (elements, attributes, the five predefined entities,
/// comments, processing instructions, and self-closing tags). Not a
/// general-purpose XML implementation: DTDs, CDATA, namespaces-as-URIs,
/// and mixed-content subtleties are out of scope and rejected or
/// ignored as documented per token kind.
class XmlParser {
 public:
  enum class TokenKind {
    /// `<name attr="v" ...>`
    kStartElement,
    /// `</name>` — also synthesized right after a self-closing element.
    kEndElement,
    /// Non-whitespace character data between tags (entity-decoded).
    kText,
    /// End of input.
    kEnd,
  };

  struct Token {
    TokenKind kind = TokenKind::kEnd;
    /// Element name (start/end) or decoded text content.
    std::string name;
    /// Attributes of a start element, in document order.
    std::vector<std::pair<std::string, std::string>> attributes;

    /// First value of attribute `key`, or an empty string.
    std::string_view Attribute(std::string_view key) const;
  };

  /// Parses from an in-memory document; `document` must outlive the
  /// parser.
  explicit XmlParser(std::string_view document);

  /// Returns the next token, or a ParseError with the byte offset.
  Result<Token> Next();

  /// Byte offset of the parse cursor (for error reporting / tests).
  std::size_t offset() const { return pos_; }

 private:
  Status Error(const std::string& message) const;
  void SkipWhitespace();
  bool SkipMisc();  // Comments, processing instructions, declarations.
  Result<std::string> ReadName();
  Result<std::string> DecodeEntities(std::string_view raw) const;

  std::string_view doc_;
  std::size_t pos_ = 0;
  /// Pending synthesized end-element (from `<x/>`).
  std::string pending_end_;
};

}  // namespace hematch

#endif  // HEMATCH_LOG_XML_PARSER_H_
