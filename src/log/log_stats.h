#ifndef HEMATCH_LOG_LOG_STATS_H_
#define HEMATCH_LOG_LOG_STATS_H_

#include <cstddef>
#include <vector>

#include "log/event_log.h"

namespace hematch {

/// Per-log summary statistics used by Table 3 and by the Entropy-only
/// baseline.
struct LogStats {
  std::size_t num_traces = 0;
  std::size_t num_events = 0;
  std::size_t total_length = 0;
  std::size_t min_trace_length = 0;
  std::size_t max_trace_length = 0;
  double mean_trace_length = 0.0;

  /// `support[v]` = number of traces containing event v at least once.
  std::vector<std::size_t> support;
  /// `frequency[v]` = support[v] / num_traces (0 when the log is empty).
  std::vector<double> frequency;
  /// `occurrence_entropy[v]` = binary entropy (in bits) of the indicator
  /// "trace contains v": the uninterpreted per-event feature used by the
  /// Entropy-only matcher of Kang & Naughton (paper Section 6.3.1).
  std::vector<double> occurrence_entropy;
};

/// Computes `LogStats` in one pass over the log.
LogStats ComputeLogStats(const EventLog& log);

}  // namespace hematch

#endif  // HEMATCH_LOG_LOG_STATS_H_
