#include "log/projection.h"

#include <algorithm>

namespace hematch {

EventLog ProjectFirstEvents(const EventLog& log, std::size_t num_events) {
  EventLog out;
  const std::size_t kept = std::min(num_events, log.num_events());
  for (EventId id = 0; id < kept; ++id) {
    out.InternEvent(log.dictionary().Name(id));
  }
  for (const Trace& trace : log.traces()) {
    Trace projected;
    for (EventId id : trace) {
      if (id < kept) {
        projected.push_back(id);  // Ids are stable: we kept a prefix.
      }
    }
    if (!projected.empty()) {
      out.AddTrace(std::move(projected));
    }
  }
  return out;
}

EventLog ProjectEventSubset(const EventLog& log, const std::vector<bool>& keep,
                            std::vector<EventId>* old_to_new) {
  EventLog out;
  std::vector<EventId> translate(log.num_events(), kInvalidEventId);
  for (EventId id = 0; id < log.num_events(); ++id) {
    if (id < keep.size() && keep[id]) {
      translate[id] = out.InternEvent(log.dictionary().Name(id));
    }
  }
  for (const Trace& trace : log.traces()) {
    Trace projected;
    for (EventId id : trace) {
      if (translate[id] != kInvalidEventId) {
        projected.push_back(translate[id]);
      }
    }
    if (!projected.empty()) {
      out.AddTrace(std::move(projected));
    }
  }
  if (old_to_new != nullptr) {
    *old_to_new = std::move(translate);
  }
  return out;
}

EventLog SelectFirstTraces(const EventLog& log, std::size_t num_traces) {
  EventLog out;
  for (EventId id = 0; id < log.num_events(); ++id) {
    out.InternEvent(log.dictionary().Name(id));
  }
  const std::size_t kept = std::min(num_traces, log.num_traces());
  for (std::size_t i = 0; i < kept; ++i) {
    out.AddTrace(log.traces()[i]);
  }
  return out;
}

}  // namespace hematch
