#ifndef HEMATCH_GRAPH_DIGRAPH_H_
#define HEMATCH_GRAPH_DIGRAPH_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

namespace hematch {

/// A plain unweighted directed graph on vertices `0..n-1`.
///
/// Used by the subgraph-isomorphism routine, by the translated pattern
/// graphs, and by the NP-hardness reduction test. Self-loops are allowed;
/// parallel edges collapse.
class Digraph {
 public:
  /// Creates a graph with `num_vertices` isolated vertices.
  explicit Digraph(std::size_t num_vertices);

  /// Adds edge `u -> v` (idempotent). Requires both endpoints in range.
  void AddEdge(std::uint32_t u, std::uint32_t v);

  bool HasEdge(std::uint32_t u, std::uint32_t v) const;

  std::size_t num_vertices() const { return out_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  /// Successors of `u` in insertion order.
  const std::vector<std::uint32_t>& OutNeighbors(std::uint32_t u) const;
  /// Predecessors of `u` in insertion order.
  const std::vector<std::uint32_t>& InNeighbors(std::uint32_t u) const;

  std::size_t OutDegree(std::uint32_t u) const { return OutNeighbors(u).size(); }
  std::size_t InDegree(std::uint32_t u) const { return InNeighbors(u).size(); }

  /// All edges as (source, target) pairs, in insertion order.
  const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges() const {
    return edge_list_;
  }

 private:
  std::uint64_t EdgeKey(std::uint32_t u, std::uint32_t v) const {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  std::vector<std::vector<std::uint32_t>> out_;
  std::vector<std::vector<std::uint32_t>> in_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_list_;
  std::unordered_set<std::uint64_t> edge_set_;
  std::size_t num_edges_ = 0;
};

}  // namespace hematch

#endif  // HEMATCH_GRAPH_DIGRAPH_H_
