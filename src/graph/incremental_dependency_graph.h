#ifndef HEMATCH_GRAPH_INCREMENTAL_DEPENDENCY_GRAPH_H_
#define HEMATCH_GRAPH_INCREMENTAL_DEPENDENCY_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/dependency_graph.h"
#include "log/event_log.h"

namespace hematch {

/// A dependency graph (Definition 1) maintained *incrementally* as traces
/// arrive — the online counterpart of `DependencyGraph::Build` for the
/// streaming/CEP settings the paper's introduction motivates (matching
/// live systems whose logs keep growing).
///
/// Supports O(trace length) ingestion per trace and O(1) frequency
/// queries at any point; `Snapshot()` materializes an immutable
/// `DependencyGraph`-equivalent view for the matchers (they consume
/// normalized frequencies, which change with every ingested trace).
///
/// The vocabulary may grow over time: unseen ids are admitted by
/// `EnsureEvents`, or implicitly by `AddTrace` over a log whose
/// dictionary already interned them.
class IncrementalDependencyGraph {
 public:
  IncrementalDependencyGraph() = default;

  /// Grows the vertex set to at least `num_events`.
  void EnsureEvents(std::size_t num_events);

  /// Ingests one trace: per-trace vertex supports and distinct
  /// consecutive-pair supports, exactly as in Definition 1.
  void AddTrace(const Trace& trace);

  /// Ingests every trace of `log` (and adopts its vocabulary size).
  void AddLog(const EventLog& log);

  std::size_t num_traces() const { return num_traces_; }
  std::size_t num_events() const { return vertex_support_.size(); }

  /// Current normalized frequencies (0 when nothing ingested).
  double VertexFrequency(EventId v) const;
  double EdgeFrequency(EventId u, EventId v) const;

  /// Raw supports (trace counts).
  std::size_t VertexSupport(EventId v) const;
  std::size_t EdgeSupport(EventId u, EventId v) const;

  /// Materializes the equivalent batch `DependencyGraph` (by replaying
  /// into an `EventLog`-free constructor path): frequencies, adjacency,
  /// and edge lists match `DependencyGraph::Build` over the same traces
  /// (property-tested).
  DependencyGraph Snapshot() const;

 private:
  static std::uint64_t PairKey(EventId u, EventId v) {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  std::size_t num_traces_ = 0;
  std::vector<std::size_t> vertex_support_;
  std::unordered_map<std::uint64_t, std::size_t> edge_support_;
  // Scratch buffers reused across AddTrace calls.
  mutable std::vector<std::uint32_t> seen_stamp_;
  mutable std::uint32_t stamp_ = 0;
  mutable std::unordered_set<std::uint64_t> seen_pairs_;
};

}  // namespace hematch

#endif  // HEMATCH_GRAPH_INCREMENTAL_DEPENDENCY_GRAPH_H_
