#ifndef HEMATCH_GRAPH_SUBGRAPH_ISOMORPHISM_H_
#define HEMATCH_GRAPH_SUBGRAPH_ISOMORPHISM_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.h"

namespace hematch {

/// Options for `FindSubgraphIsomorphism`.
struct SubgraphIsomorphismOptions {
  /// When true, non-edges of the pattern must map to non-edges of the
  /// target (induced subgraph isomorphism); when false, only pattern edges
  /// constrain the embedding (subgraph monomorphism — what Theorem 1's
  /// reduction and Proposition 3 use).
  bool induced = false;

  /// Upper bound on search-tree nodes before giving up (returns nullopt as
  /// "not found"; the caller can distinguish via `nodes_expanded`).
  std::uint64_t max_nodes = 50'000'000;
};

/// Statistics from a `FindSubgraphIsomorphism` run.
struct SubgraphIsomorphismStats {
  std::uint64_t nodes_expanded = 0;
  bool budget_exhausted = false;
};

/// Searches for an injective mapping `m` from `pattern` vertices to
/// `target` vertices with `(u,v) in E(pattern) => (m(u),m(v)) in E(target)`
/// (and the converse too when `options.induced`). Returns the mapping
/// (indexed by pattern vertex) or nullopt when none exists.
///
/// This is a VF2-style backtracking search with connectivity-guided vertex
/// ordering and degree-based pruning. It is exponential in the worst case
/// — Theorem 1 reduces this very problem to event matching — but fast on
/// the small pattern graphs (< 10 vertices) the matcher feeds it.
std::optional<std::vector<std::uint32_t>> FindSubgraphIsomorphism(
    const Digraph& pattern, const Digraph& target,
    const SubgraphIsomorphismOptions& options = {},
    SubgraphIsomorphismStats* stats = nullptr);

/// Convenience wrapper: true when an embedding exists.
bool IsSubgraphIsomorphic(const Digraph& pattern, const Digraph& target,
                          const SubgraphIsomorphismOptions& options = {});

}  // namespace hematch

#endif  // HEMATCH_GRAPH_SUBGRAPH_ISOMORPHISM_H_
