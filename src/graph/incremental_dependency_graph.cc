#include "graph/incremental_dependency_graph.h"

#include <algorithm>

#include "common/check.h"

namespace hematch {

void IncrementalDependencyGraph::EnsureEvents(std::size_t num_events) {
  if (num_events > vertex_support_.size()) {
    vertex_support_.resize(num_events, 0);
    seen_stamp_.resize(num_events, 0);
  }
}

void IncrementalDependencyGraph::AddTrace(const Trace& trace) {
  for (EventId v : trace) {
    EnsureEvents(static_cast<std::size_t>(v) + 1);
  }
  ++num_traces_;
  // Stamp-based "seen" marking avoids clearing a bitmap per trace.
  ++stamp_;
  seen_pairs_.clear();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const EventId v = trace[i];
    if (seen_stamp_[v] != stamp_) {
      seen_stamp_[v] = stamp_;
      ++vertex_support_[v];
    }
    if (i + 1 < trace.size()) {
      const std::uint64_t key = PairKey(v, trace[i + 1]);
      if (seen_pairs_.insert(key).second) {
        ++edge_support_[key];
      }
    }
  }
}

void IncrementalDependencyGraph::AddLog(const EventLog& log) {
  EnsureEvents(log.num_events());
  for (const Trace& trace : log.traces()) {
    AddTrace(trace);
  }
}

double IncrementalDependencyGraph::VertexFrequency(EventId v) const {
  if (num_traces_ == 0 || v >= vertex_support_.size()) {
    return 0.0;
  }
  return static_cast<double>(vertex_support_[v]) /
         static_cast<double>(num_traces_);
}

double IncrementalDependencyGraph::EdgeFrequency(EventId u, EventId v) const {
  if (num_traces_ == 0) {
    return 0.0;
  }
  auto it = edge_support_.find(PairKey(u, v));
  if (it == edge_support_.end()) {
    return 0.0;
  }
  return static_cast<double>(it->second) /
         static_cast<double>(num_traces_);
}

std::size_t IncrementalDependencyGraph::VertexSupport(EventId v) const {
  return v < vertex_support_.size() ? vertex_support_[v] : 0;
}

std::size_t IncrementalDependencyGraph::EdgeSupport(EventId u,
                                                    EventId v) const {
  auto it = edge_support_.find(PairKey(u, v));
  return it == edge_support_.end() ? 0 : it->second;
}

DependencyGraph IncrementalDependencyGraph::Snapshot() const {
  return DependencyGraph::FromSupports(num_traces_, vertex_support_,
                                       edge_support_);
}

}  // namespace hematch
