#include "graph/dependency_graph.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace hematch {

DependencyGraph DependencyGraph::Build(const EventLog& log) {
  const std::size_t n = log.num_events();
  std::vector<std::size_t> vertex_support(n, 0);
  std::unordered_map<std::uint64_t, std::size_t> edge_support;
  std::vector<bool> seen(n, false);
  std::unordered_set<std::uint64_t> seen_pairs;

  for (const Trace& trace : log.traces()) {
    std::fill(seen.begin(), seen.end(), false);
    seen_pairs.clear();
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const EventId v = trace[i];
      if (!seen[v]) {
        seen[v] = true;
        ++vertex_support[v];
      }
      if (i + 1 < trace.size()) {
        // Count each distinct consecutive pair once per trace: frequencies
        // are "the number of traces where u v occur consecutively at least
        // once" (Definition 1).
        const std::uint64_t key = PairKey(v, trace[i + 1]);
        if (seen_pairs.insert(key).second) {
          ++edge_support[key];
        }
      }
    }
  }
  return FromSupports(log.num_traces(), vertex_support, edge_support);
}

DependencyGraph DependencyGraph::FromSupports(
    std::size_t num_traces, const std::vector<std::size_t>& vertex_support,
    const std::unordered_map<std::uint64_t, std::size_t>& edge_support) {
  DependencyGraph g;
  const std::size_t n = vertex_support.size();
  g.vertex_freq_.assign(n, 0.0);
  g.out_.assign(n, {});
  g.in_.assign(n, {});
  if (num_traces == 0) {
    return g;
  }
  const double inv = 1.0 / static_cast<double>(num_traces);
  for (EventId v = 0; v < n; ++v) {
    g.vertex_freq_[v] = vertex_support[v] * inv;
  }
  for (const auto& [key, support] : edge_support) {
    if (support == 0) {
      continue;  // Zero-frequency pairs are not edges.
    }
    const EventId u = static_cast<EventId>(key >> 32);
    const EventId v = static_cast<EventId>(key & 0xffffffffULL);
    HEMATCH_CHECK(u < n && v < n, "edge support references unknown events");
    g.edge_freq_.emplace(key, support * inv);
    g.out_[u].push_back(v);
    g.in_[v].push_back(u);
    g.edge_list_.emplace_back(u, v);
  }
  // Hash iteration order is nondeterministic; sort for reproducible output.
  std::sort(g.edge_list_.begin(), g.edge_list_.end());
  for (auto& neighbors : g.out_) {
    std::sort(neighbors.begin(), neighbors.end());
  }
  for (auto& neighbors : g.in_) {
    std::sort(neighbors.begin(), neighbors.end());
  }
  return g;
}

double DependencyGraph::VertexFrequency(EventId v) const {
  if (v >= vertex_freq_.size()) {
    return 0.0;
  }
  return vertex_freq_[v];
}

double DependencyGraph::EdgeFrequency(EventId u, EventId v) const {
  auto it = edge_freq_.find(PairKey(u, v));
  return it == edge_freq_.end() ? 0.0 : it->second;
}

const std::vector<EventId>& DependencyGraph::OutNeighbors(EventId u) const {
  HEMATCH_CHECK(u < out_.size(),
                "DependencyGraph::OutNeighbors vertex out of range");
  return out_[u];
}

const std::vector<EventId>& DependencyGraph::InNeighbors(EventId u) const {
  HEMATCH_CHECK(u < in_.size(),
                "DependencyGraph::InNeighbors vertex out of range");
  return in_[u];
}

double DependencyGraph::MaxVertexFrequency(
    const std::vector<EventId>& vertices) const {
  double best = 0.0;
  for (EventId v : vertices) {
    best = std::max(best, VertexFrequency(v));
  }
  return best;
}

double DependencyGraph::MaxInducedEdgeFrequency(
    const std::vector<EventId>& vertices) const {
  std::unordered_set<EventId> in_set(vertices.begin(), vertices.end());
  double best = 0.0;
  for (EventId u : vertices) {
    if (u >= out_.size()) continue;
    for (EventId v : out_[u]) {
      if (in_set.count(v) > 0) {
        best = std::max(best, EdgeFrequency(u, v));
      }
    }
  }
  return best;
}

}  // namespace hematch
