#include "graph/digraph.h"

#include "common/check.h"

namespace hematch {

Digraph::Digraph(std::size_t num_vertices)
    : out_(num_vertices), in_(num_vertices) {}

void Digraph::AddEdge(std::uint32_t u, std::uint32_t v) {
  HEMATCH_CHECK(u < out_.size() && v < out_.size(),
                "Digraph::AddEdge endpoint out of range");
  if (!edge_set_.insert(EdgeKey(u, v)).second) {
    return;  // Parallel edge; collapse.
  }
  out_[u].push_back(v);
  in_[v].push_back(u);
  edge_list_.emplace_back(u, v);
  ++num_edges_;
}

bool Digraph::HasEdge(std::uint32_t u, std::uint32_t v) const {
  if (u >= out_.size() || v >= out_.size()) {
    return false;
  }
  return edge_set_.count(EdgeKey(u, v)) > 0;
}

const std::vector<std::uint32_t>& Digraph::OutNeighbors(
    std::uint32_t u) const {
  HEMATCH_CHECK(u < out_.size(), "Digraph::OutNeighbors vertex out of range");
  return out_[u];
}

const std::vector<std::uint32_t>& Digraph::InNeighbors(std::uint32_t u) const {
  HEMATCH_CHECK(u < in_.size(), "Digraph::InNeighbors vertex out of range");
  return in_[u];
}

}  // namespace hematch
