#include "graph/subgraph_isomorphism.h"

#include <algorithm>

namespace hematch {

namespace {

constexpr std::uint32_t kUnmapped = ~std::uint32_t{0};

class Vf2Searcher {
 public:
  Vf2Searcher(const Digraph& pattern, const Digraph& target,
              const SubgraphIsomorphismOptions& options,
              SubgraphIsomorphismStats* stats)
      : pattern_(pattern),
        target_(target),
        options_(options),
        stats_(stats),
        mapping_(pattern.num_vertices(), kUnmapped),
        used_(target.num_vertices(), false) {
    BuildOrder();
  }

  std::optional<std::vector<std::uint32_t>> Run() {
    if (pattern_.num_vertices() > target_.num_vertices()) {
      return std::nullopt;
    }
    if (Search(0)) {
      return mapping_;
    }
    return std::nullopt;
  }

 private:
  // Orders pattern vertices so each (after the first in its component) is
  // adjacent to an already-placed vertex; ties broken by higher degree.
  void BuildOrder() {
    const std::size_t n = pattern_.num_vertices();
    std::vector<bool> placed(n, false);
    order_.reserve(n);
    auto degree = [&](std::uint32_t v) {
      return pattern_.OutDegree(v) + pattern_.InDegree(v);
    };
    for (std::size_t step = 0; step < n; ++step) {
      std::uint32_t best = kUnmapped;
      bool best_connected = false;
      for (std::uint32_t v = 0; v < n; ++v) {
        if (placed[v]) continue;
        bool connected = false;
        for (std::uint32_t u : pattern_.OutNeighbors(v)) {
          if (placed[u]) connected = true;
        }
        for (std::uint32_t u : pattern_.InNeighbors(v)) {
          if (placed[u]) connected = true;
        }
        if (best == kUnmapped || (connected && !best_connected) ||
            (connected == best_connected && degree(v) > degree(best))) {
          best = v;
          best_connected = connected;
        }
      }
      placed[best] = true;
      order_.push_back(best);
    }
  }

  bool Feasible(std::uint32_t pv, std::uint32_t tv) const {
    if (pattern_.OutDegree(pv) > target_.OutDegree(tv) ||
        pattern_.InDegree(pv) > target_.InDegree(tv)) {
      return false;
    }
    // Check consistency against all already-mapped neighbors.
    for (std::uint32_t pu : pattern_.OutNeighbors(pv)) {
      const std::uint32_t tu = mapping_[pu];
      if (pu == pv) {
        if (!target_.HasEdge(tv, tv)) return false;
      } else if (tu != kUnmapped && !target_.HasEdge(tv, tu)) {
        return false;
      }
    }
    for (std::uint32_t pu : pattern_.InNeighbors(pv)) {
      const std::uint32_t tu = mapping_[pu];
      if (pu != pv && tu != kUnmapped && !target_.HasEdge(tu, tv)) {
        return false;
      }
    }
    if (options_.induced) {
      // Mapped pattern non-edges must stay non-edges.
      for (std::uint32_t pu = 0; pu < pattern_.num_vertices(); ++pu) {
        const std::uint32_t tu = mapping_[pu];
        if (tu == kUnmapped || pu == pv) continue;
        if (!pattern_.HasEdge(pv, pu) && target_.HasEdge(tv, tu)) return false;
        if (!pattern_.HasEdge(pu, pv) && target_.HasEdge(tu, tv)) return false;
      }
    }
    return true;
  }

  bool Search(std::size_t depth) {
    if (depth == order_.size()) {
      return true;
    }
    const std::uint32_t pv = order_[depth];
    for (std::uint32_t tv = 0; tv < target_.num_vertices(); ++tv) {
      if (nodes_ >= options_.max_nodes) {
        if (stats_ != nullptr) {
          stats_->budget_exhausted = true;
        }
        return false;
      }
      if (used_[tv] || !Feasible(pv, tv)) {
        continue;
      }
      ++nodes_;
      if (stats_ != nullptr) {
        ++stats_->nodes_expanded;
      }
      mapping_[pv] = tv;
      used_[tv] = true;
      if (Search(depth + 1)) {
        return true;
      }
      mapping_[pv] = kUnmapped;
      used_[tv] = false;
    }
    return false;
  }

  const Digraph& pattern_;
  const Digraph& target_;
  const SubgraphIsomorphismOptions& options_;
  SubgraphIsomorphismStats* stats_;
  std::vector<std::uint32_t> mapping_;
  std::vector<bool> used_;
  std::vector<std::uint32_t> order_;
  std::uint64_t nodes_ = 0;
};

}  // namespace

std::optional<std::vector<std::uint32_t>> FindSubgraphIsomorphism(
    const Digraph& pattern, const Digraph& target,
    const SubgraphIsomorphismOptions& options,
    SubgraphIsomorphismStats* stats) {
  Vf2Searcher searcher(pattern, target, options, stats);
  return searcher.Run();
}

bool IsSubgraphIsomorphic(const Digraph& pattern, const Digraph& target,
                          const SubgraphIsomorphismOptions& options) {
  return FindSubgraphIsomorphism(pattern, target, options).has_value();
}

}  // namespace hematch
