#ifndef HEMATCH_GRAPH_DEPENDENCY_GRAPH_H_
#define HEMATCH_GRAPH_DEPENDENCY_GRAPH_H_

#include <cstddef>
#include <unordered_map>
#include <utility>
#include <vector>

#include "log/event_log.h"

namespace hematch {

/// The event dependency graph of an event log (Definition 1).
///
/// Vertices are the log's events. The labeling function `f` assigns:
///  * `f(v, v)`   — the fraction of traces containing event `v`;
///  * `f(u, v)`   — the fraction of traces in which `u` is immediately
///                  followed by `v` at least once.
/// Pairs that never occur consecutively carry frequency 0 and are not
/// edges of the graph ("we ignore those edges with frequency 0").
class DependencyGraph {
 public:
  /// Builds the dependency graph of `log` in one pass
  /// (O(total log length)).
  static DependencyGraph Build(const EventLog& log);

  /// Builds a graph directly from per-trace supports: `vertex_support[v]`
  /// traces contain `v`; `edge_support[(u << 32) | v]` traces contain the
  /// consecutive pair `u v`. Used by the incremental maintenance path.
  static DependencyGraph FromSupports(
      std::size_t num_traces, const std::vector<std::size_t>& vertex_support,
      const std::unordered_map<std::uint64_t, std::size_t>& edge_support);

  /// Number of events (vertices).
  std::size_t num_vertices() const { return vertex_freq_.size(); }
  /// Number of edges with non-zero frequency.
  std::size_t num_edges() const { return edge_list_.size(); }

  /// Normalized frequency of event `v` (0 for out-of-range ids).
  double VertexFrequency(EventId v) const;

  /// Normalized frequency of the consecutive pair `u v` (0 when absent).
  double EdgeFrequency(EventId u, EventId v) const;

  /// True when `u v` occurs consecutively in at least one trace.
  bool HasEdge(EventId u, EventId v) const {
    return EdgeFrequency(u, v) > 0.0;
  }

  /// Successors of `u` (targets of positive-frequency edges).
  const std::vector<EventId>& OutNeighbors(EventId u) const;

  /// Predecessors of `u` (sources of positive-frequency edges).
  const std::vector<EventId>& InNeighbors(EventId u) const;

  /// All edges as (source, target) pairs.
  const std::vector<std::pair<EventId, EventId>>& edges() const {
    return edge_list_;
  }

  /// Largest vertex frequency among `vertices` (0 if the set is empty).
  double MaxVertexFrequency(const std::vector<EventId>& vertices) const;

  /// Largest edge frequency within the subgraph induced by `vertices`
  /// (0 if that subgraph has no edges). Used by the tight bound of
  /// Algorithm 2, where `vertices` is the unmapped-event set `U2`.
  double MaxInducedEdgeFrequency(const std::vector<EventId>& vertices) const;

 private:
  DependencyGraph() = default;

  static std::uint64_t PairKey(EventId u, EventId v) {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  std::vector<double> vertex_freq_;
  std::unordered_map<std::uint64_t, double> edge_freq_;
  std::vector<std::vector<EventId>> out_;
  std::vector<std::vector<EventId>> in_;
  std::vector<std::pair<EventId, EventId>> edge_list_;
};

}  // namespace hematch

#endif  // HEMATCH_GRAPH_DEPENDENCY_GRAPH_H_
