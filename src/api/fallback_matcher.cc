#include "api/fallback_matcher.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "core/heuristic_advanced_matcher.h"
#include "core/heuristic_simple_matcher.h"
#include "core/matching_context.h"
#include "obs/trace.h"

namespace hematch {

FallbackMatcher::FallbackMatcher(std::vector<std::unique_ptr<Matcher>> ladder,
                                 FallbackOptions options)
    : ladder_(std::move(ladder)), options_(std::move(options)) {
  HEMATCH_CHECK(!ladder_.empty(), "fallback ladder needs at least one rung");
}

std::unique_ptr<FallbackMatcher> FallbackMatcher::ExactWithHeuristicFallbacks(
    const AStarOptions& astar, FallbackOptions options) {
  std::vector<std::unique_ptr<Matcher>> ladder;
  ladder.push_back(std::make_unique<AStarMatcher>(astar));
  HeuristicAdvancedOptions advanced;
  advanced.scorer = astar.scorer;
  ladder.push_back(std::make_unique<HeuristicAdvancedMatcher>(advanced));
  HeuristicSimpleOptions simple;
  simple.scorer = astar.scorer;
  ladder.push_back(std::make_unique<HeuristicSimpleMatcher>(simple));
  return std::make_unique<FallbackMatcher>(std::move(ladder),
                                           std::move(options));
}

std::string FallbackMatcher::name() const { return ladder_.front()->name(); }

Result<MatchResult> FallbackMatcher::Match(MatchingContext& context) const {
  exec::ExecutionGovernor& governor = context.governor();
  obs::MetricsRegistry& metrics = context.metrics();
  obs::TraceRecorder* recorder = context.trace_recorder();
  // Brackets the whole ladder; the rungs' own `match.<slug>` spans nest
  // inside it, and each degradation step leaves an instant marker.
  obs::ScopedSpan ladder_span(recorder, "pipeline.ladder", "api");

  exec::RunBudget remaining = options_.budget;
  exec::TerminationReason first_trip = exec::TerminationReason::kCompleted;
  std::vector<StageAttempt> stages;
  MatchResult best;
  bool have_best = false;
  double certified_upper = 0.0;
  bool have_upper = false;
  Status last_error = Status::Internal("fallback ladder ran no stage");

  for (std::size_t i = 0; i < ladder_.size(); ++i) {
    governor.Arm(remaining, options_.cancel);
    Result<MatchResult> attempt = [&]() -> Result<MatchResult> {
      // Isolation boundary: a rung that throws (a bug, or an injected
      // crash fault) is recorded as a failed stage and the ladder moves
      // on, instead of the exception unwinding through the pipeline.
      try {
        return ladder_[i]->Match(context);
      } catch (const std::exception& e) {
        return Status::Internal(std::string("matcher crashed: ") + e.what());
      } catch (...) {
        return Status::Internal("matcher crashed: unknown exception");
      }
    }();
    if (!attempt.ok()) {
      StageAttempt stage;
      stage.method = ladder_[i]->name();
      stage.termination = exec::TerminationReason::kFailed;
      stage.elapsed_ms = governor.ElapsedMs();
      stages.push_back(std::move(stage));
      obs::TraceInstant(recorder, "pipeline.stage_failed", "api",
                        {{"rung", static_cast<double>(i)}});
      metrics.GetCounter("pipeline.termination.failed")->Increment();
      if (first_trip == exec::TerminationReason::kCompleted) {
        first_trip = exec::TerminationReason::kFailed;
      }
      // A hard failure (error status or crash — not budget, matchers
      // return anytime results for those) still tries the next rung;
      // it may not share the precondition that broke this one.
      last_error = attempt.status();
      remaining = governor.Remaining();
      continue;
    }
    MatchResult stage_result = *std::move(attempt);
    StageAttempt stage;
    stage.method = ladder_[i]->name();
    stage.termination = stage_result.termination;
    stage.objective = stage_result.objective;
    stage.elapsed_ms = stage_result.elapsed_ms;
    stage.mappings_processed = stage_result.mappings_processed;
    stages.push_back(stage);

    if (stage_result.termination != exec::TerminationReason::kCompleted &&
        first_trip == exec::TerminationReason::kCompleted) {
      first_trip = stage_result.termination;
    }
    if (stage_result.bounds_certified) {
      certified_upper = have_upper
                            ? std::min(certified_upper,
                                       stage_result.upper_bound)
                            : stage_result.upper_bound;
      have_upper = true;
    }
    if (!have_best || stage_result.objective > best.objective) {
      best = std::move(stage_result);
      have_best = true;
    }
    if (stage.termination == exec::TerminationReason::kCompleted) {
      break;  // This rung finished its full answer; no need to degrade.
    }
    if (stage.termination == exec::TerminationReason::kCancelled) {
      break;  // The caller asked out; do not start more work.
    }
    remaining = governor.Remaining();
    if (i + 1 < ladder_.size()) {
      metrics.GetCounter("pipeline.fallbacks")->Increment();
      obs::TraceInstant(recorder, "pipeline.fallback", "api",
                        {{"to_rung", static_cast<double>(i + 1)},
                         {"remaining_ms", remaining.deadline_ms}});
    }
  }
  governor.Disarm();
  ladder_span.AddArg("stages", static_cast<double>(stages.size()));
  ladder_span.AddArg("degraded",
                     first_trip != exec::TerminationReason::kCompleted ? 1.0
                                                                       : 0.0);

  if (!have_best) {
    return last_error;
  }
  MatchResult result = std::move(best);
  result.stages = std::move(stages);
  if (first_trip != exec::TerminationReason::kCompleted) {
    // The run degraded: termination names the limit that first fired,
    // the objective is the best stage's, and the bound bracket combines
    // the best achieved score with the tightest certified upper bound
    // (from the exact stage) when one exists.
    result.termination = first_trip;
    result.lower_bound = result.objective;
    if (have_upper) {
      result.upper_bound = std::max(certified_upper, result.objective);
      result.bounds_certified = true;
    } else {
      result.upper_bound = result.objective;
      result.bounds_certified = false;
    }
    metrics
        .GetCounter(std::string("pipeline.termination.") +
                    exec::TerminationReasonToString(first_trip))
        ->Increment();
  }
  return result;
}

}  // namespace hematch
