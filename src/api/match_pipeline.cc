#include "api/match_pipeline.h"

#include <memory>

#include "api/fallback_matcher.h"
#include "baselines/entropy_matcher.h"
#include "baselines/iterative_matcher.h"
#include "baselines/vertex_edge_matcher.h"
#include "baselines/vertex_matcher.h"
#include "core/astar_matcher.h"
#include "core/heuristic_advanced_matcher.h"
#include "core/heuristic_simple_matcher.h"
#include "core/matching_context.h"
#include "core/pattern_set.h"
#include "exec/parallel_astar.h"
#include "exec/portfolio.h"
#include "exec/watchdog.h"
#include "gen/pattern_miner.h"
#include "graph/dependency_graph.h"
#include "pattern/pattern_parser.h"

namespace hematch {

namespace {

std::unique_ptr<Matcher> MakeExactMatcher(const MatchPipelineOptions& options,
                                          BoundKind bound) {
  AStarOptions astar;
  astar.scorer = options.scorer;
  astar.scorer.bound = bound;
  astar.max_expansions = options.max_expansions;
  if (!options.degrade) {
    return std::make_unique<AStarMatcher>(astar);
  }
  FallbackOptions fallback;
  fallback.budget = options.budget;
  fallback.cancel = options.cancel;
  return FallbackMatcher::ExactWithHeuristicFallbacks(astar, fallback);
}

// The parallel exact matcher, optionally wrapped in the same
// heuristic fallback ladder the sequential exact methods get.
std::unique_ptr<Matcher> MakeParallelMatcher(
    const MatchPipelineOptions& options) {
  exec::ParallelAStarOptions popts;
  popts.scorer = options.scorer;
  popts.scorer.bound = BoundKind::kBitmapTight;
  popts.threads = options.search_threads;
  popts.max_expansions = options.max_expansions;
  auto parallel = std::make_unique<exec::ParallelAStarMatcher>(popts);
  if (!options.degrade) {
    return parallel;
  }
  std::vector<std::unique_ptr<Matcher>> ladder;
  ladder.push_back(std::move(parallel));
  HeuristicAdvancedOptions advanced;
  advanced.scorer = options.scorer;
  ladder.push_back(std::make_unique<HeuristicAdvancedMatcher>(advanced));
  HeuristicSimpleOptions simple;
  simple.scorer = options.scorer;
  ladder.push_back(std::make_unique<HeuristicSimpleMatcher>(simple));
  FallbackOptions fallback;
  fallback.budget = options.budget;
  fallback.cancel = options.cancel;
  return std::make_unique<FallbackMatcher>(std::move(ladder), fallback);
}

std::unique_ptr<Matcher> MakeMatcher(const MatchPipelineOptions& options) {
  switch (options.method) {
    case MatchMethod::kPatternTight:
      return MakeExactMatcher(options, BoundKind::kTight);
    case MatchMethod::kPatternSimple:
      return MakeExactMatcher(options, BoundKind::kSimple);
    case MatchMethod::kParallelAStar:
      return MakeParallelMatcher(options);
    case MatchMethod::kHeuristicSimple: {
      HeuristicSimpleOptions heuristic;
      heuristic.scorer = options.scorer;
      return std::make_unique<HeuristicSimpleMatcher>(heuristic);
    }
    case MatchMethod::kHeuristicAdvanced: {
      HeuristicAdvancedOptions heuristic;
      heuristic.scorer = options.scorer;
      return std::make_unique<HeuristicAdvancedMatcher>(heuristic);
    }
    case MatchMethod::kVertex: {
      VertexOptions vertex;
      vertex.partial = options.scorer.partial;
      return std::make_unique<VertexMatcher>(vertex);
    }
    case MatchMethod::kVertexEdge: {
      VertexEdgeOptions ve;
      ve.max_expansions = options.max_expansions;
      ve.partial = options.scorer.partial;
      return std::make_unique<VertexEdgeMatcher>(ve);
    }
    case MatchMethod::kIterative:
      return std::make_unique<IterativeMatcher>();
    case MatchMethod::kEntropy:
      return std::make_unique<EntropyMatcher>();
  }
  return nullptr;
}

}  // namespace

Result<MatchPipelineOutcome> MatchLogs(const EventLog& log1,
                                       const EventLog& log2,
                                       const MatchPipelineOptions& options) {
  MatchPipelineOutcome outcome;
  // Orientation: the mapping is injective source -> target, so the
  // smaller vocabulary is the source.
  const bool swapped = log1.num_events() > log2.num_events();
  outcome.swapped = swapped;
  const EventLog& source = swapped ? log2 : log1;
  const EventLog& target = swapped ? log1 : log2;

  obs::TraceRecorder* recorder = options.trace_recorder.get();
  std::vector<Pattern> complex;
  {
    obs::ScopedSpan pattern_span(recorder, "pipeline.patterns", "api");
    for (const std::string& text : options.patterns) {
      HEMATCH_ASSIGN_OR_RETURN(Pattern p,
                               ParsePattern(text, source.dictionary()));
      outcome.used_patterns.push_back(p.ToString(&source.dictionary()));
      complex.push_back(std::move(p));
    }
    if (options.mine_patterns) {
      PatternMinerOptions miner;
      miner.min_support = options.mine_min_support;
      for (Pattern& p : MineDiscriminativePatterns(source, miner)) {
        outcome.used_patterns.push_back(p.ToString(&source.dictionary()));
        complex.push_back(std::move(p));
      }
    }
    pattern_span.AddArg("patterns", static_cast<double>(complex.size()));
    pattern_span.AddArg("mined", options.mine_patterns ? 1.0 : 0.0);
  }

  const DependencyGraph g1 = DependencyGraph::Build(source);

  const bool exact_method = options.method == MatchMethod::kPatternTight ||
                            options.method == MatchMethod::kPatternSimple ||
                            options.method == MatchMethod::kParallelAStar;
  if (options.portfolio && exact_method) {
    // Hedged mode: race the exact matcher and both heuristics on worker
    // threads instead of laddering them. The runner owns its own state
    // (log copies, contexts, registry) so abandoned stragglers are
    // safe; we just translate its outcome into the pipeline's shape.
    exec::PortfolioOptions popts;
    popts.budget = options.budget;
    popts.threads = options.portfolio_threads;
    popts.external_cancel = options.cancel;
    popts.telemetry = options.telemetry;
    popts.trace_recorder = options.trace_recorder;
    popts.heartbeat_ms = options.heartbeat_ms;
    popts.heartbeat = options.heartbeat;
    const BoundKind bound =
        options.method == MatchMethod::kPatternSimple ? BoundKind::kSimple
                                                      : BoundKind::kTight;
    // For the parallel method the race card leads with the parallel
    // matcher; the sequential exact entry stays as a hedge.
    const int parallel_threads = options.method == MatchMethod::kParallelAStar
                                     ? options.search_threads
                                     : -1;
    exec::PortfolioRunner runner(
        exec::DefaultPortfolioStrategies(options.scorer, bound,
                                         options.max_expansions,
                                         parallel_threads),
        popts);
    HEMATCH_ASSIGN_OR_RETURN(
        exec::PortfolioOutcome portfolio,
        runner.Run(source, target, BuildPatternSet(g1, complex)));
    outcome.result = std::move(portfolio.result);
    outcome.termination = outcome.result.termination;
    // Every strategy always runs in a race, so the ladder's "more than
    // one stage ran" degradation test is meaningless here; degraded
    // means the race ended without a certified-complete answer.
    outcome.degraded =
        outcome.termination != exec::TerminationReason::kCompleted;
    outcome.telemetry = std::move(portfolio.telemetry);
    return outcome;
  }

  ContextTelemetryOptions telemetry;
  telemetry.enabled = options.telemetry;
  telemetry.tracer = options.tracer;
  telemetry.trace_recorder = recorder;
  MatchingContext context(source, target, BuildPatternSet(g1, complex),
                          telemetry);
  std::unique_ptr<Matcher> matcher = MakeMatcher(options);
  if (matcher == nullptr) {
    return Status::InvalidArgument("unknown match method");
  }
  // Heartbeat clock for the sequential path (the portfolio path rides
  // its own watchdog): deadline-less, beats only. Joined (reset) before
  // the final snapshot so the last beat cannot race it.
  std::unique_ptr<exec::Watchdog> heartbeat_clock;
  if (options.heartbeat_ms > 0.0 && options.heartbeat) {
    exec::WatchdogOptions wd;
    wd.heartbeat_ms = options.heartbeat_ms;
    wd.heartbeat = [&context, &options](std::uint64_t seq) {
      options.heartbeat(seq, context.SnapshotTelemetry());
    };
    heartbeat_clock = std::make_unique<exec::Watchdog>(std::move(wd));
  }
  // Arm the run budget; fallback ladders re-arm with their remaining
  // slice per stage, everything else runs under this one.
  context.ArmBudget(options.budget, options.cancel);
  HEMATCH_ASSIGN_OR_RETURN(outcome.result, matcher->Match(context));
  heartbeat_clock.reset();
  outcome.termination = outcome.result.termination;
  outcome.degraded = outcome.result.degraded();
  outcome.telemetry = context.SnapshotTelemetry();
  return outcome;
}

}  // namespace hematch
