#ifndef HEMATCH_API_FALLBACK_MATCHER_H_
#define HEMATCH_API_FALLBACK_MATCHER_H_

/// \file
/// Graceful degradation: a ladder of matchers run under one shared
/// budget.  The primary (typically exact A*) runs first; if its budget
/// trips, each fallback rung runs with whatever budget remains, and the
/// best complete mapping across all stages is returned.  The result
/// records the full fallback chain (`MatchResult::stages`) and keeps
/// the *first* trip reason as its termination — "this run degraded
/// because the deadline fired" — even though a fallback completed.
///
/// See docs/ROBUSTNESS.md for the ladder semantics and exit-code
/// conventions.

#include <memory>
#include <string>
#include <vector>

#include "core/astar_matcher.h"
#include "core/matcher.h"
#include "exec/budget.h"

namespace hematch {

/// Budget shared by the whole ladder.
struct FallbackOptions {
  exec::RunBudget budget;
  /// Optional cooperative cancellation; must outlive the call.
  const exec::CancelToken* cancel = nullptr;
};

/// Runs a ladder of matchers under one budget, degrading down the rungs
/// as stages exhaust it.  `name()` is the primary rung's name, so
/// method slugs, CLI tables, and JSON stay stable whether or not the
/// run degraded; per-stage telemetry lands under each rung's own slug.
class FallbackMatcher : public Matcher {
 public:
  /// `ladder` must be non-empty; rung 0 is the primary.
  FallbackMatcher(std::vector<std::unique_ptr<Matcher>> ladder,
                  FallbackOptions options = {});

  /// The canonical ladder: exact A* with the given options, degrading
  /// to the advanced heuristic, then the simple heuristic (both reuse
  /// the A* scorer configuration).
  static std::unique_ptr<FallbackMatcher> ExactWithHeuristicFallbacks(
      const AStarOptions& astar, FallbackOptions options = {});

  std::string name() const override;
  Result<MatchResult> Match(MatchingContext& context) const override;

 private:
  std::vector<std::unique_ptr<Matcher>> ladder_;
  FallbackOptions options_;
};

}  // namespace hematch

#endif  // HEMATCH_API_FALLBACK_MATCHER_H_
