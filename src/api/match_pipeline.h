#ifndef HEMATCH_API_MATCH_PIPELINE_H_
#define HEMATCH_API_MATCH_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/match_result.h"
#include "core/mapping_scorer.h"
#include "exec/budget.h"
#include "log/event_log.h"
#include "obs/search_tracer.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "pattern/pattern.h"

namespace hematch {

/// Which matching algorithm the one-call facade runs.
enum class MatchMethod : std::uint8_t {
  kPatternTight,        ///< Exact A*, tight bound (default).
  kPatternSimple,       ///< Exact A*, simple bound.
  kParallelAStar,       ///< Parallel exact A* (HDA*), bitmap-tight bound.
  kHeuristicSimple,     ///< Greedy expansion.
  kHeuristicAdvanced,   ///< Algorithms 3 & 4.
  kVertex,              ///< Kang & Naughton, vertex form.
  kVertexEdge,          ///< Kang & Naughton, vertex+edge form.
  kIterative,           ///< Nejati et al., similarity propagation.
  kEntropy,             ///< Entropy-only features.
};

/// Options for `MatchLogs`.
struct MatchPipelineOptions {
  MatchMethod method = MatchMethod::kPatternTight;
  /// Complex patterns over the *source* log (the smaller-vocabulary side
  /// after the pipeline's orientation step). Textual forms are parsed
  /// against that log's dictionary.
  std::vector<std::string> patterns;
  /// Additionally mine discriminative patterns from the source log.
  bool mine_patterns = false;
  double mine_min_support = 0.10;
  /// Expansion budget for the exact methods.
  std::uint64_t max_expansions = 50'000'000;
  /// Run-wide resource budget (deadline / expansions / memory). The
  /// governor of the run's context is armed with it before matching;
  /// a tripped budget yields an anytime result, not an error.
  exec::RunBudget budget;
  /// Optional cooperative cancellation; must outlive the call.
  const exec::CancelToken* cancel = nullptr;
  /// Graceful degradation for the exact methods: when their budget
  /// trips, fall back to the advanced then the simple heuristic with
  /// the remaining budget (recording the chain in the outcome). Set
  /// false to get the exact matcher's own anytime result instead.
  bool degrade = true;
  /// Hedged portfolio mode for the exact methods (see exec/portfolio.h):
  /// instead of the sequential exact→advanced→simple ladder, race all
  /// three on worker threads under the shared budget and return the
  /// first certified-optimal result or the best-by-objective at the
  /// deadline. Per-strategy outcomes land in `result.stages` and
  /// `portfolio.*` telemetry. Ignored for the heuristic/baseline
  /// methods (nothing to hedge). Off by default — the single-threaded
  /// paths are untouched when this is false.
  bool portfolio = false;
  /// Worker-thread cap for portfolio mode; 0 = one thread per strategy.
  int portfolio_threads = 0;
  /// Search threads for `kParallelAStar` (0 = hardware concurrency).
  /// Ignored by every other method.
  int search_threads = 0;
  /// Bound / existence-check / partial-mapping configuration. Setting
  /// `scorer.partial.unmapped_penalty` finite enables partial mappings
  /// in every method that understands them (exact A*, both heuristics,
  /// Vertex, Vertex+Edge, the fallback ladder, and the portfolio); the
  /// Iterative/Entropy baselines always produce total mappings.
  ScorerOptions scorer;
  /// Collect structured metrics for this run (`MatchPipelineOutcome::
  /// telemetry`). When false the run pays no metric bookkeeping and the
  /// outcome's snapshot is empty.
  bool telemetry = true;
  /// Optional live progress receiver (see obs/search_tracer.h); must
  /// outlive the call. Null = no tracing.
  obs::SearchTracer* tracer = nullptr;
  /// Optional span recorder (obs/trace.h): pattern prep, context build,
  /// matcher / ladder / portfolio spans all land here, exportable as a
  /// Chrome/Perfetto trace afterwards. Shared ownership because the
  /// portfolio path hands it to detached workers that may outlive the
  /// call. Null = zero tracing overhead.
  std::shared_ptr<obs::TraceRecorder> trace_recorder;
  /// Heartbeat: when positive (and `heartbeat` is set), a watchdog-
  /// thread clock snapshots the run's telemetry every `heartbeat_ms`
  /// and hands it to `heartbeat` with a 0-based sequence number —
  /// periodic evidence from runs that hang or blow their budget. The
  /// callback runs on that clock's thread and must not block for long.
  double heartbeat_ms = 0.0;
  std::function<void(std::uint64_t seq, const obs::TelemetrySnapshot&)>
      heartbeat;
};

/// Outcome of the facade: the mapping plus the information callers
/// invariably want next.
struct MatchPipelineOutcome {
  MatchResult result;
  /// True when the pipeline swapped the logs so that |V1| <= |V2|; the
  /// returned mapping is then from `log2`'s events to `log1`'s.
  bool swapped = false;
  /// Convenience mirror of `result.termination`: how the run stopped.
  exec::TerminationReason termination = exec::TerminationReason::kCompleted;
  /// True when the fallback ladder had to run more than one stage
  /// (`result.stages` then records the chain with per-stage termination
  /// reasons).
  bool degraded = false;
  /// The patterns actually used (textual, over the source vocabulary) —
  /// provided plus mined.
  std::vector<std::string> used_patterns;
  /// Structured metrics of the run: the matcher's counters under its
  /// method slug (e.g. `pattern_tight.mappings_processed`), frequency
  /// cache/index counters under `freq1.`/`freq2.`, existence-pruning
  /// counters under `existence.`. Empty when `options.telemetry` was
  /// false. See docs/OBSERVABILITY.md for the taxonomy.
  obs::TelemetrySnapshot telemetry;
};

/// One-call convenience API: orient the logs (injective mappings need
/// |V1| <= |V2|), assemble the pattern set (vertices + edges + provided
/// + optionally mined patterns), build the context, and run the selected
/// matcher. Library users composing several runs should use
/// `MatchingContext` + a `Matcher` directly to share caches; this facade
/// is for the "just match these two logs" case.
Result<MatchPipelineOutcome> MatchLogs(
    const EventLog& log1, const EventLog& log2,
    const MatchPipelineOptions& options = {});

}  // namespace hematch

#endif  // HEMATCH_API_MATCH_PIPELINE_H_
