#include "baselines/vertex_edge_matcher.h"

#include "core/astar_matcher.h"
#include "core/pattern_set.h"

namespace hematch {

VertexEdgeMatcher::VertexEdgeMatcher(VertexEdgeOptions options)
    : options_(options) {}

Result<MatchResult> VertexEdgeMatcher::Match(MatchingContext& context) const {
  // Restricted instance: vertices + edges of G1 as the pattern set.
  PatternSetOptions set_options;
  set_options.include_vertices = true;
  set_options.include_edges = true;
  MatchingContext restricted(
      context.log1(), context.log2(),
      BuildPatternSet(context.graph1(), /*complex_patterns=*/{},
                      set_options));

  AStarOptions astar_options;
  astar_options.scorer.bound = BoundKind::kTight;
  astar_options.max_expansions = options_.max_expansions;
  astar_options.name_override = name();
  const AStarMatcher astar(astar_options);
  return astar.Match(restricted);
}

}  // namespace hematch
