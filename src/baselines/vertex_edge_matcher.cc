#include "baselines/vertex_edge_matcher.h"

#include "core/astar_matcher.h"
#include "core/pattern_set.h"

namespace hematch {

VertexEdgeMatcher::VertexEdgeMatcher(VertexEdgeOptions options)
    : options_(options) {}

Result<MatchResult> VertexEdgeMatcher::Match(MatchingContext& context) const {
  // Restricted instance: vertices + edges of G1 as the pattern set. The
  // sub-context borrows the caller's registry and tracer so the inner A*
  // run's telemetry (under the "vertex_edge." slug) lands in the same
  // place as every other method's.
  PatternSetOptions set_options;
  set_options.include_vertices = true;
  set_options.include_edges = true;
  ContextTelemetryOptions telemetry;
  telemetry.shared_registry = &context.metrics();
  telemetry.tracer = context.tracer();
  telemetry.shared_governor = &context.governor();
  telemetry.trace_recorder = context.trace_recorder();
  MatchingContext restricted(
      context.log1(), context.log2(),
      BuildPatternSet(context.graph1(), /*complex_patterns=*/{}, set_options),
      telemetry);

  AStarOptions astar_options;
  astar_options.scorer.bound = BoundKind::kTight;
  astar_options.scorer.partial = options_.partial;
  astar_options.max_expansions = options_.max_expansions;
  astar_options.name_override = name();
  const AStarMatcher astar(astar_options);
  return astar.Match(restricted);
}

}  // namespace hematch
