#ifndef HEMATCH_BASELINES_ITERATIVE_MATCHER_H_
#define HEMATCH_BASELINES_ITERATIVE_MATCHER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/matcher.h"

namespace hematch {

/// How neighborhood similarity is aggregated in each propagation step.
enum class PropagationMode : std::uint8_t {
  /// SimRank-style: the mean similarity over all neighbor pairs — the
  /// "page-rank like iterative" computation the paper attributes to [16].
  kAverage,
  /// Similarity-flooding-style: for each of u's neighbors, the best
  /// similarity to one of v's neighbors, averaged. A stronger variant
  /// kept for the ablation bench.
  kMaxMatch,
};

/// Options for the Iterative baseline.
struct IterativeOptions {
  /// Aggregation rule (kAverage reproduces the paper's baseline).
  PropagationMode mode = PropagationMode::kAverage;
  /// Damping: how much of each pair's similarity comes from neighborhood
  /// propagation versus the seed similarity.
  double propagation_weight = 0.5;
  /// Fixpoint controls.
  std::uint32_t max_iterations = 50;
  double convergence_epsilon = 1e-9;
};

/// The **Iterative** baseline adapted from Nejati et al. [16] (statechart
/// matching by iterative vertex-similarity propagation, in the spirit of
/// SimRank / similarity flooding).
///
/// Pair similarities over the two dependency graphs are iterated to a
/// fixpoint:
///
///   sim_0(u, v)     = FrequencySimilarity(f1(u), f2(v))
///   sim_{k+1}(u,v)  = (1-w) * sim_0(u,v)
///                     + w * (prop_succ + prop_pred) / 2
///
/// where prop_succ averages, over u's dependency successors, the best
/// similarity to one of v's successors (and prop_pred symmetrically over
/// predecessors); a side with no neighbors on either graph contributes
/// its seed value. The final injective mapping is extracted from the
/// converged matrix with a maximum-weight assignment.
///
/// Adaptation note (documented per DESIGN.md): [16] seeds with label
/// similarity, which is unavailable for opaque events, so the seed is the
/// frequency similarity — the only uninterpreted per-event signal, the
/// same one the Vertex baseline uses.
class IterativeMatcher : public Matcher {
 public:
  explicit IterativeMatcher(IterativeOptions options = {});

  std::string name() const override { return "Iterative"; }
  Result<MatchResult> Match(MatchingContext& context) const override;

  /// Exposed for tests: runs the propagation and returns the converged
  /// similarity matrix (n1 x n2).
  std::vector<std::vector<double>> ConvergedSimilarities(
      MatchingContext& context) const;

 private:
  IterativeOptions options_;
};

}  // namespace hematch

#endif  // HEMATCH_BASELINES_ITERATIVE_MATCHER_H_
