#include "baselines/iterative_matcher.h"

#include <algorithm>
#include <cmath>

#include "assignment/hungarian.h"
#include "core/match_telemetry.h"
#include "core/normal_distance.h"
#include "obs/stopwatch.h"

namespace hematch {

IterativeMatcher::IterativeMatcher(IterativeOptions options)
    : options_(options) {}

std::vector<std::vector<double>> IterativeMatcher::ConvergedSimilarities(
    MatchingContext& context) const {
  const DependencyGraph& g1 = context.graph1();
  const DependencyGraph& g2 = context.graph2();
  const std::size_t n1 = context.num_sources();
  const std::size_t n2 = context.num_targets();

  std::vector<std::vector<double>> seed(n1, std::vector<double>(n2, 0.0));
  for (EventId u = 0; u < n1; ++u) {
    for (EventId v = 0; v < n2; ++v) {
      seed[u][v] =
          FrequencySimilarity(g1.VertexFrequency(u), g2.VertexFrequency(v));
    }
  }

  std::vector<std::vector<double>> sim = seed;
  std::vector<std::vector<double>> next(n1, std::vector<double>(n2, 0.0));
  const double w = options_.propagation_weight;

  // One direction of neighborhood propagation; see PropagationMode.
  const PropagationMode mode = options_.mode;
  auto propagate = [&sim, mode](const std::vector<EventId>& nu,
                                const std::vector<EventId>& nv,
                                double fallback) {
    if (nu.empty() || nv.empty()) {
      return fallback;  // No structure to compare on one side.
    }
    double total = 0.0;
    if (mode == PropagationMode::kAverage) {
      for (EventId up : nu) {
        for (EventId vp : nv) {
          total += sim[up][vp];
        }
      }
      return total / static_cast<double>(nu.size() * nv.size());
    }
    for (EventId up : nu) {
      double best = 0.0;
      for (EventId vp : nv) {
        best = std::max(best, sim[up][vp]);
      }
      total += best;
    }
    return total / static_cast<double>(nu.size());
  };

  obs::Counter* iterations =
      context.metrics().GetCounter("iterative.propagation_iterations");
  // Budget trips end propagation early; the similarities converged so
  // far still feed the assignment solve (anytime).
  exec::ExecutionGovernor& governor = context.governor();
  for (std::uint32_t iter = 0;
       iter < options_.max_iterations && governor.Poll(); ++iter) {
    iterations->Increment();
    double delta = 0.0;
    bool tripped = false;
    for (EventId u = 0; u < n1 && !tripped; ++u) {
      if (!governor.CheckExpansions(n2)) {
        tripped = true;
        break;
      }
      for (EventId v = 0; v < n2; ++v) {
        const double succ = propagate(g1.OutNeighbors(u), g2.OutNeighbors(v),
                                      seed[u][v]);
        const double pred = propagate(g1.InNeighbors(u), g2.InNeighbors(v),
                                      seed[u][v]);
        next[u][v] = (1.0 - w) * seed[u][v] + w * 0.5 * (succ + pred);
        delta = std::max(delta, std::fabs(next[u][v] - sim[u][v]));
      }
    }
    if (tripped) {
      break;  // `next` is half-updated; keep the last full iteration.
    }
    sim.swap(next);
    if (delta < options_.convergence_epsilon) {
      break;
    }
  }
  return sim;
}

Result<MatchResult> IterativeMatcher::Match(MatchingContext& context) const {
  const obs::Stopwatch watch;
  obs::ScopedSpan match_span(context.trace_recorder(),
                             "match." + obs::MetricSlug(name()), "baselines");
  const std::size_t n1 = context.num_sources();
  const std::size_t n2 = context.num_targets();
  if (n1 > n2) {
    return Status::InvalidArgument(
        "Iterative matcher requires |V1| <= |V2|; swap the logs");
  }
  const std::vector<std::vector<double>> sim = ConvergedSimilarities(context);

  const std::size_t n = std::max(n1, n2);
  std::vector<std::vector<double>> weights(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n1; ++i) {
    for (std::size_t j = 0; j < n2; ++j) {
      weights[i][j] = sim[i][j];
    }
  }
  const AssignmentResult assignment = SolveMaxWeightAssignment(weights);

  MatchResult result;
  if (context.governor().exhausted()) {
    result.termination = context.governor().reason();
  }
  result.mapping = Mapping(n1, n2);
  for (std::size_t i = 0; i < n1; ++i) {
    const std::size_t j = assignment.assignment[i];
    if (j < n2) {
      result.mapping.Set(static_cast<EventId>(i), static_cast<EventId>(j));
    }
  }
  // Report the method's own objective: total converged similarity.
  result.objective = 0.0;
  for (std::size_t i = 0; i < n1; ++i) {
    const std::size_t j = assignment.assignment[i];
    if (j < n2) {
      result.objective += sim[i][j];
    }
  }
  // Every (source, target) similarity feeds the final assignment solve.
  result.mappings_processed = static_cast<std::uint64_t>(n1) * n2;
  FinalizeMatchTelemetry(context, name(), watch, result);
  return result;
}

}  // namespace hematch
