#ifndef HEMATCH_BASELINES_VERTEX_EDGE_MATCHER_H_
#define HEMATCH_BASELINES_VERTEX_EDGE_MATCHER_H_

#include <cstdint>
#include <string>

#include "core/mapping_scorer.h"
#include "core/matcher.h"

namespace hematch {

/// Options for the Vertex+Edge baseline.
struct VertexEdgeOptions {
  /// Expansion budget; like the exact pattern matcher, Vertex+Edge is a
  /// full search and "cannot return results" beyond ~20 events (Fig. 12).
  std::uint64_t max_expansions = 50'000'000;
  /// Partial-mapping semantics, forwarded to the inner A* run.
  PartialMappingOptions partial;
};

/// The **Vertex+Edge** baseline of Kang & Naughton [7]: maximize the
/// vertex+edge-form normal distance (Definition 2).
///
/// Vertices and edges are special patterns, so this is the pattern
/// framework instantiated with the vertex+edge pattern set and no complex
/// patterns (Section 2.2: "pattern based matching can be interpreted as a
/// generalization of the existing vertex/edge based matching"). The
/// matcher builds that restricted instance internally and runs the A*
/// search with the tight bound on it; unlike Vertex, the edge terms
/// couple pairs, so no polynomial shortcut exists (Theorem 1).
class VertexEdgeMatcher : public Matcher {
 public:
  explicit VertexEdgeMatcher(VertexEdgeOptions options = {});

  std::string name() const override { return "Vertex+Edge"; }
  Result<MatchResult> Match(MatchingContext& context) const override;

 private:
  VertexEdgeOptions options_;
};

}  // namespace hematch

#endif  // HEMATCH_BASELINES_VERTEX_EDGE_MATCHER_H_
