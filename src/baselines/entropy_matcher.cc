#include "baselines/entropy_matcher.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "assignment/hungarian.h"
#include "core/match_telemetry.h"
#include "log/log_stats.h"
#include "obs/stopwatch.h"

namespace hematch {

Result<MatchResult> EntropyMatcher::Match(MatchingContext& context) const {
  const obs::Stopwatch watch;
  obs::ScopedSpan match_span(context.trace_recorder(),
                             "match." + obs::MetricSlug(name()), "baselines");
  const std::size_t n1 = context.num_sources();
  const std::size_t n2 = context.num_targets();
  if (n1 > n2) {
    return Status::InvalidArgument(
        "Entropy matcher requires |V1| <= |V2|; swap the logs");
  }
  const LogStats stats1 = ComputeLogStats(context.log1());
  const LogStats stats2 = ComputeLogStats(context.log2());

  const std::size_t n = std::max(n1, n2);
  // Maximize -|H1 - H2| == minimize total entropy difference. Dummy rows
  // pair at weight 0, which never beats a real pairing since real weights
  // are <= 0 — offset all real weights by a constant so dummies are
  // neutral: Hungarian only compares totals over perfect matchings, and
  // every perfect matching matches all real rows, so a constant offset
  // per row changes nothing. We therefore use the raw -|ΔH|.
  // Budget trips leave the remaining rows at weight zero: the
  // assignment solve still yields a complete (anytime) mapping.
  exec::ExecutionGovernor& governor = context.governor();
  std::uint64_t rows_filled = 0;
  std::vector<std::vector<double>> weights(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n1; ++i) {
    if (!governor.CheckExpansions(n2)) break;
    ++rows_filled;
    for (std::size_t j = 0; j < n2; ++j) {
      weights[i][j] =
          -std::fabs(stats1.occurrence_entropy[i] -
                     stats2.occurrence_entropy[j]);
    }
  }
  const AssignmentResult assignment = SolveMaxWeightAssignment(weights);

  MatchResult result;
  if (governor.exhausted()) {
    result.termination = governor.reason();
  }
  result.mapping = Mapping(n1, n2);
  result.objective = 0.0;
  for (std::size_t i = 0; i < n1; ++i) {
    const std::size_t j = assignment.assignment[i];
    if (j < n2) {
      result.mapping.Set(static_cast<EventId>(i), static_cast<EventId>(j));
      result.objective += weights[i][j];
    }
  }
  // One assignment solve over the (possibly truncated) matrix.
  result.mappings_processed = rows_filled * n2;
  FinalizeMatchTelemetry(context, name(), watch, result);
  return result;
}

}  // namespace hematch
