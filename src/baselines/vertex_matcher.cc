#include "baselines/vertex_matcher.h"

#include <algorithm>
#include <vector>

#include "assignment/hungarian.h"
#include "core/match_telemetry.h"
#include "core/normal_distance.h"
#include "obs/stopwatch.h"

namespace hematch {

Result<MatchResult> VertexMatcher::Match(MatchingContext& context) const {
  const obs::Stopwatch watch;
  obs::ScopedSpan match_span(context.trace_recorder(),
                             "match." + obs::MetricSlug(name()), "baselines");
  const std::size_t n1 = context.num_sources();
  const std::size_t n2 = context.num_targets();
  const bool partial = options_.partial.enabled();
  if (n1 > n2 && !partial) {
    return Status::InvalidArgument(
        "Vertex matcher requires |V1| <= |V2|; swap the logs or enable "
        "partial mappings");
  }
  // ⊥ columns (one per real source) make rectangular instances legal
  // under partial mappings; assigning a source there pays the penalty.
  const std::size_t num_cols = partial ? n2 + n1 : n2;
  const std::size_t n = std::max(n1, num_cols);

  // Pairwise vertex-frequency similarities, zero-padded to square.
  // Budget trips leave the remaining rows at weight zero: the
  // assignment solve still yields a complete (anytime) mapping.
  exec::ExecutionGovernor& governor = context.governor();
  std::uint64_t rows_filled = 0;
  std::vector<std::vector<double>> weights(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n1; ++i) {
    if (partial) {
      for (std::size_t j = n2; j < num_cols; ++j) {
        weights[i][j] = -options_.partial.unmapped_penalty;
      }
    }
    if (!governor.CheckExpansions(n2)) break;
    ++rows_filled;
    for (std::size_t j = 0; j < n2; ++j) {
      weights[i][j] = FrequencySimilarity(
          context.graph1().VertexFrequency(static_cast<EventId>(i)),
          context.graph2().VertexFrequency(static_cast<EventId>(j)));
    }
  }
  const AssignmentResult assignment = SolveMaxWeightAssignment(weights);

  MatchResult result;
  if (governor.exhausted()) {
    result.termination = governor.reason();
  }
  result.mapping = Mapping(n1, n2);
  for (std::size_t i = 0; i < n1; ++i) {
    const std::size_t j = assignment.assignment[i];
    if (j < n2) {
      result.mapping.Set(static_cast<EventId>(i), static_cast<EventId>(j));
    } else if (partial) {
      result.mapping.SetUnmapped(static_cast<EventId>(i));
    }
  }
  // One assignment solve over the (possibly truncated) weight matrix.
  result.mappings_processed = rows_filled * n2;
  result.objective = VertexNormalDistance(context.graph1(), context.graph2(),
                                          result.mapping);
  if (partial && result.mapping.num_null_sources() > 0) {
    result.objective -=
        options_.partial.unmapped_penalty *
        static_cast<double>(result.mapping.num_null_sources());
  }
  FinalizePartialMapping(context, name(), options_.partial, result);
  FinalizeMatchTelemetry(context, name(), watch, result);
  return result;
}

}  // namespace hematch
