#include "baselines/vertex_matcher.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "assignment/hungarian.h"
#include "core/normal_distance.h"

namespace hematch {

Result<MatchResult> VertexMatcher::Match(MatchingContext& context) const {
  const auto start_time = std::chrono::steady_clock::now();
  const std::size_t n1 = context.num_sources();
  const std::size_t n2 = context.num_targets();
  if (n1 > n2) {
    return Status::InvalidArgument(
        "Vertex matcher requires |V1| <= |V2|; swap the logs");
  }
  const std::size_t n = std::max(n1, n2);

  // Pairwise vertex-frequency similarities, zero-padded to square.
  std::vector<std::vector<double>> weights(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n1; ++i) {
    for (std::size_t j = 0; j < n2; ++j) {
      weights[i][j] = FrequencySimilarity(
          context.graph1().VertexFrequency(static_cast<EventId>(i)),
          context.graph2().VertexFrequency(static_cast<EventId>(j)));
    }
  }
  const AssignmentResult assignment = SolveMaxWeightAssignment(weights);

  MatchResult result;
  result.mapping = Mapping(n1, n2);
  for (std::size_t i = 0; i < n1; ++i) {
    const std::size_t j = assignment.assignment[i];
    if (j < n2) {
      result.mapping.Set(static_cast<EventId>(i), static_cast<EventId>(j));
    }
  }
  result.objective = VertexNormalDistance(context.graph1(), context.graph2(),
                                          result.mapping);
  result.elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start_time)
                          .count();
  return result;
}

}  // namespace hematch
