#ifndef HEMATCH_BASELINES_VERTEX_MATCHER_H_
#define HEMATCH_BASELINES_VERTEX_MATCHER_H_

#include <string>

#include "core/mapping_scorer.h"
#include "core/matcher.h"

namespace hematch {

/// Options for the Vertex baseline.
struct VertexOptions {
  /// Partial-mapping semantics; with a finite penalty the assignment
  /// matrix gains one ⊥ column per source (so |V1| > |V2| is legal) and
  /// the objective subtracts the penalty per unmapped source.
  PartialMappingOptions partial;
};

/// The **Vertex** baseline of Kang & Naughton [7]: find the mapping that
/// maximizes the vertex-form normal distance (Definition 2 with v1 = v2),
/// i.e., the sum of vertex-frequency similarities.
///
/// Because the vertex objective decomposes over pairs, the optimum is a
/// maximum-weight bipartite assignment; this matcher computes it exactly
/// in O(n^3) with the Hungarian algorithm (Theorem 2's polynomial special
/// case — vertex patterns only). Dummy events pad rectangular instances.
class VertexMatcher : public Matcher {
 public:
  VertexMatcher() = default;
  explicit VertexMatcher(VertexOptions options) : options_(options) {}

  std::string name() const override { return "Vertex"; }
  Result<MatchResult> Match(MatchingContext& context) const override;

 private:
  VertexOptions options_;
};

}  // namespace hematch

#endif  // HEMATCH_BASELINES_VERTEX_MATCHER_H_
