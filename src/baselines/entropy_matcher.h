#ifndef HEMATCH_BASELINES_ENTROPY_MATCHER_H_
#define HEMATCH_BASELINES_ENTROPY_MATCHER_H_

#include <string>

#include "core/matcher.h"

namespace hematch {

/// The **Entropy-only** baseline from Kang & Naughton [7], used by the
/// paper as the non-graph-based comparator (Section 6.3.1).
///
/// Each event is summarized by the binary entropy of its per-trace
/// occurrence indicator — "the uncertainty of whether the events appear in
/// a trace, without exploiting the structural information among events" —
/// and the mapping minimizes the total entropy difference via a bipartite
/// assignment (weights `-|H1(u) - H2(v)|`). Very fast, structure-blind,
/// and accordingly less accurate: the trade-off Fig. 12 illustrates.
class EntropyMatcher : public Matcher {
 public:
  std::string name() const override { return "Entropy-only"; }
  Result<MatchResult> Match(MatchingContext& context) const override;
};

}  // namespace hematch

#endif  // HEMATCH_BASELINES_ENTROPY_MATCHER_H_
