#ifndef HEMATCH_GEN_SYNTHETIC_PROCESS_H_
#define HEMATCH_GEN_SYNTHETIC_PROCESS_H_

#include <cstdint>

#include "gen/matching_task.h"

namespace hematch {

/// Options for the repeated-structure synthetic workload of Section 6.3.1
/// (Fig. 11).
struct SyntheticProcessOptions {
  /// Number of repeated structural units; each unit contributes 10 events
  /// (Fig. 12's x-axis is `10 * num_units`, up to 100).
  std::size_t num_units = 10;
  /// Traces per log (Table 3: 10,000).
  std::size_t num_traces = 10000;
  std::uint64_t seed = 7;
  /// Relative per-step probability jitter for the second site's process.
  double site2_probability_jitter = 0.04;
  bool shuffle_target_vocabulary = true;
};

/// Builds the larger synthetic data of Section 6.3.1 by repeating one
/// structure with different event names (Fig. 11): unit `u` is
///
///   entry(u) ; AND( m1(u), m2(u), m3(u), m4(u) ) ; XOR( x1..x4(u) ) ; exit(u)
///
/// Each trace executes exactly one unit, drawn with *nearly equal* unit
/// probabilities, so corresponding events of different units have
/// near-identical vertex frequencies and identical local structure — the
/// "very similar dependency graphs" that defeat vertex/edge matching.
/// The AND-block order preferences and XOR probabilities are unit-specific
/// and shared (up to the probability shift) between the two logs, so a
/// correct mapping is recoverable in principle.
///
/// Complex patterns (over L1): per unit, the concurrency pattern
/// `AND(m1..m4)`, plus — for every second unit — an orientation pattern
/// `SEQ(entry, mi, mj)` fixing the unit's most likely block prefix
/// (~1.5 patterns per 10 events; Table 3 lists 16 at 100 events).
MatchingTask MakeSyntheticTask(const SyntheticProcessOptions& options = {});

}  // namespace hematch

#endif  // HEMATCH_GEN_SYNTHETIC_PROCESS_H_
