#ifndef HEMATCH_GEN_PROCESS_MODEL_H_
#define HEMATCH_GEN_PROCESS_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "log/event_log.h"

namespace hematch {

/// A block-structured business-process model used to *simulate* the
/// paper's proprietary ERP logs (see DESIGN.md §4). Mirrors the standard
/// workflow constructs:
///
///  * `Activity`  — emits one event;
///  * `Sequence`  — children in order;
///  * `Parallel`  — children in an interleaving-free random order (an
///                  AND-split whose branches are atomic blocks, matching
///                  the paper's AND pattern semantics); per-child weights
///                  bias which orders are common, which is what gives the
///                  AND members distinguishable *edge* frequencies while
///                  their vertex frequencies stay identical;
///  * `Choice`    — exactly one child, by probability (XOR-split);
///  * `Optional`  — the child with probability `p`, else nothing.
///
/// Blocks are immutable and shared via `std::shared_ptr`, so two logs can
/// be generated from one model (with different RNG streams and, via
/// `ProcessModel::probability_scale`, perturbed branch probabilities — the
/// heterogeneity between two departments running "the same" process).
class ProcessBlock {
 public:
  using Ptr = std::shared_ptr<const ProcessBlock>;

  /// Leaf: emits `name`.
  static Ptr Activity(std::string name);
  /// Children in the given order.
  static Ptr Sequence(std::vector<Ptr> children);
  /// Children in a random order; `order_weights` (same length as
  /// `children`, default uniform) bias which child tends to come first:
  /// the order is drawn by weighted sampling without replacement.
  static Ptr Parallel(std::vector<Ptr> children,
                      std::vector<double> order_weights = {});
  /// One child at random, by `probabilities` (same length as `children`,
  /// normalized internally).
  static Ptr Choice(std::vector<Ptr> children,
                    std::vector<double> probabilities);
  /// The child with probability `p`, nothing otherwise.
  static Ptr Optional(Ptr child, double p);
  /// The child once, then again with probability `repeat_probability`
  /// after each execution, up to `max_repeats` extra times — the
  /// rework/retry loop of real workflows (e.g. failed quality checks).
  static Ptr Loop(Ptr child, double repeat_probability,
                  std::size_t max_repeats = 3);

  /// Appends one simulated execution of this block to `out`.
  /// `probability_perturbation` is added to every Choice/Optional
  /// probability (clamped to [0, 1]) to model a uniform behaviour drift
  /// between sites; generators that want *per-step* drift instead build
  /// each site's model with jittered probabilities and pass 0 here.
  void Simulate(Rng& rng, double probability_perturbation,
                std::vector<std::string>& out) const;

  /// All activity names in canonical (model) order, depth-first.
  void CollectActivities(std::vector<std::string>& out) const;

 private:
  enum class Kind {
    kActivity,
    kSequence,
    kParallel,
    kChoice,
    kOptional,
    kLoop,
  };

  explicit ProcessBlock(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::string name_;                  // kActivity
  std::vector<Ptr> children_;         // composites
  std::vector<double> weights_;       // kParallel order weights /
                                      // kChoice probabilities /
                                      // kOptional {p} /
                                      // kLoop {repeat_p, max_repeats}
};

/// A process model plus generation parameters.
struct ProcessModel {
  ProcessBlock::Ptr root;

  /// Probability that a generated trace is truncated at a uniform cut
  /// point (>= 1 event kept): orders abandoned mid-process / extraction
  /// windows that end early. Gives later process steps strictly lower
  /// occurrence frequencies — the monotone position fingerprint real
  /// logs show.
  double truncate_probability = 0.0;

  /// Generates `num_traces` executions. Every activity of the model is
  /// interned into the log's dictionary (in `vocabulary_order` if given,
  /// else canonical model order) *before* any trace, so event ids are
  /// deterministic and independent of branch sampling.
  EventLog Generate(std::size_t num_traces, Rng& rng,
                    double probability_perturbation = 0.0,
                    const std::vector<std::string>& vocabulary_order = {}) const;
};

}  // namespace hematch

#endif  // HEMATCH_GEN_PROCESS_MODEL_H_
