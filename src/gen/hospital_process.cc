#include "gen/hospital_process.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "gen/process_model.h"

namespace hematch {

namespace {

// Step indices into the 13-name vocabulary:
//   0 triage, 1 vitals, 2 bloods, 3 imaging, 4 specialist, 5 diagnosis,
//   6 bed allocation, 7 med reconciliation, 8 ward handover,
//   9 treatment, 10 prescription, 11 discharge letter, 12 billing.
ProcessModel BuildPathway(const std::vector<std::string>& n, Rng* jitter,
                          double magnitude) {
  HEMATCH_CHECK(n.size() == 13, "pathway needs 13 step names");
  auto jit = [&](double p) {
    if (jitter == nullptr || magnitude <= 0.0) {
      return p;
    }
    return std::clamp(p + (jitter->NextDouble() * 2.0 - 1.0) * magnitude,
                      0.01, 0.999);
  };
  auto act = [&](std::size_t i) { return ProcessBlock::Activity(n[i]); };

  // Extra diagnostics happen for ~80% of episodes; when they do, imaging
  // is somewhat more common than a specialist consult
  // (0.8 * 0.5625 = 0.45 imaging, 0.8 * 0.4375 = 0.35 specialist).
  ProcessBlock::Ptr diagnostics = ProcessBlock::Optional(
      ProcessBlock::Choice({act(3), act(4)}, {jit(0.5625), jit(0.4375)}),
      jit(0.80));

  // Admission branch: concurrent bed allocation & medication
  // reconciliation, then the ward handover.
  ProcessBlock::Ptr admit = ProcessBlock::Sequence({
      ProcessBlock::Parallel({act(6), act(7)}, {jit(0.55), jit(0.45)}),
      act(8),
  });
  // Outpatient branch: treatment, usually a prescription, then the
  // discharge letter.
  ProcessBlock::Ptr treat = ProcessBlock::Sequence({
      act(9),
      ProcessBlock::Optional(act(10), jit(0.80)),
      act(11),
  });

  ProcessModel model;
  model.root = ProcessBlock::Sequence({
      act(0),
      ProcessBlock::Parallel({act(1), act(2)}, {jit(0.70), jit(0.30)}),
      diagnostics,
      act(5),
      ProcessBlock::Choice({admit, treat}, {jit(0.30), jit(0.70)}),
      ProcessBlock::Optional(act(12), jit(0.90)),
  });
  model.truncate_probability = 0.06;  // Abandoned / transferred episodes.
  return model;
}

std::vector<std::string> SiteNames(const std::string& prefix) {
  std::vector<std::string> names;
  for (int i = 1; i <= 13; ++i) {
    names.push_back(prefix + (i < 10 ? "0" : "") + std::to_string(i));
  }
  return names;
}

}  // namespace

MatchingTask MakeHospitalTask(const HospitalProcessOptions& options) {
  Rng rng(options.seed);
  const std::vector<std::string> names1 = SiteNames("T");
  const std::vector<std::string> names2 = SiteNames("z");
  std::vector<std::string> vocab2 = names2;
  if (options.shuffle_target_vocabulary) {
    rng.Shuffle(vocab2);
  }

  Rng jitter = rng.Fork();
  ProcessModel site1 = BuildPathway(names1, /*jitter=*/nullptr, 0.0);
  ProcessModel site2 =
      BuildPathway(names2, &jitter, options.site2_probability_jitter);
  site2.truncate_probability = std::clamp(
      site1.truncate_probability +
          (jitter.NextDouble() * 2.0 - 1.0) *
              options.site2_probability_jitter,
      0.0, 1.0);

  MatchingTask task;
  task.name = "hospital-pathway";
  Rng rng1 = rng.Fork();
  Rng rng2 = rng.Fork();
  task.log1 = site1.Generate(options.num_traces, rng1,
                             /*probability_perturbation=*/0.0, names1);
  task.log2 = site2.Generate(options.num_traces, rng2,
                             /*probability_perturbation=*/0.0, vocab2);

  task.ground_truth =
      Mapping(task.log1.num_events(), task.log2.num_events());
  for (std::size_t i = 0; i < names1.size(); ++i) {
    task.ground_truth.Set(task.log1.dictionary().Lookup(names1[i]).value(),
                          task.log2.dictionary().Lookup(names2[i]).value());
  }

  auto id = [&](std::size_t i) {
    return task.log1.dictionary().Lookup(names1[i]).value();
  };
  auto seq = [](std::vector<Pattern> children) {
    return Pattern::Seq(std::move(children)).value();
  };
  // Intake: triage, then vitals & bloods in either order, then whatever
  // diagnostics — anchor the concurrent block right after triage.
  {
    std::vector<Pattern> children;
    children.push_back(Pattern::Event(id(0)));
    children.push_back(Pattern::AndOfEvents({id(1), id(2)}));
    task.complex_patterns.push_back(seq(std::move(children)));
  }
  // Admission block in context: bed allocation & med reconciliation in
  // either order, directly before the ward handover.
  {
    std::vector<Pattern> children;
    children.push_back(Pattern::AndOfEvents({id(6), id(7)}));
    children.push_back(Pattern::Event(id(8)));
    task.complex_patterns.push_back(seq(std::move(children)));
  }
  return task;
}

}  // namespace hematch
