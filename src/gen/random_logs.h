#ifndef HEMATCH_GEN_RANDOM_LOGS_H_
#define HEMATCH_GEN_RANDOM_LOGS_H_

#include <cstdint>

#include "gen/matching_task.h"

namespace hematch {

/// Options for the random-log pair of Section 6.3.2.
struct RandomLogsOptions {
  /// Events per log (Table 3: 4 — A,B,C,D vs 1,2,3,4).
  std::size_t num_events = 4;
  /// Traces per log (Table 3: 1,000).
  std::size_t num_traces = 1000;
  /// Trace lengths are uniform in [min_trace_length, max_trace_length];
  /// events are drawn uniformly with repetition.
  std::size_t min_trace_length = 2;
  std::size_t max_trace_length = 6;
  std::uint64_t seed = 1;
};

/// Builds a pair of *independent* uniformly random logs. No true mapping
/// exists; Table 4 runs the matchers over 1,000 freshly-seeded pairs and
/// counts how often each of the 4! = 24 possible mappings is returned —
/// a well-behaved matcher shows no strong bias toward particular results.
/// The task's ground truth is empty and its pattern list is empty
/// (Table 3: 0 patterns; the framework still uses vertices and edges).
MatchingTask MakeRandomTask(const RandomLogsOptions& options = {});

}  // namespace hematch

#endif  // HEMATCH_GEN_RANDOM_LOGS_H_
