#ifndef HEMATCH_GEN_HOSPITAL_PROCESS_H_
#define HEMATCH_GEN_HOSPITAL_PROCESS_H_

#include <cstdint>

#include "gen/matching_task.h"

namespace hematch {

/// Options for the hospital-pathway workload.
struct HospitalProcessOptions {
  /// Traces (patient episodes) per log.
  std::size_t num_traces = 2000;
  std::uint64_t seed = 1234;
  /// Relative per-step probability jitter for the second hospital.
  double site2_probability_jitter = 0.02;
  bool shuffle_target_vocabulary = true;
};

/// A second "realistic" domain preset: an emergency-department patient
/// pathway logged by two hospitals with different information systems.
/// Included to show the workload machinery is not specific to the bus
/// manufacturer scenario — same simulator, different process:
///
///   triage
///   ; AND(vitals, bloods)              concurrent intake diagnostics
///   ; XOR(imaging 45% | specialist 35% | none 20%)
///   ; diagnosis
///   ; XOR(admit 30% | treat-and-discharge 70%)
///   ;   admit    -> AND(bed-allocation, med-reconciliation) ; ward-handover
///   ;   treated  -> prescription? (80%) ; discharge-letter
///
/// 13 steps per site; opaque codes ("T01".."T13" vs "z1".."z13"),
/// episode-abandonment truncation, and two curated complex patterns
/// (the intake AND-block and the admission AND-block in context).
MatchingTask MakeHospitalTask(const HospitalProcessOptions& options = {});

}  // namespace hematch

#endif  // HEMATCH_GEN_HOSPITAL_PROCESS_H_
