#include "gen/synthetic_process.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gen/process_model.h"

namespace hematch {

namespace {

// Per-unit parameter schedule, shared between the two sites so the ground
// truth stays recoverable: nearby units get near-identical selection
// weights (the cross-unit confusability) while the internal order
// preferences rotate (the within-unit signal).
std::vector<double> OrderWeights(std::size_t unit) {
  const std::vector<double> base = {1.0, 1.9, 3.1, 4.6};
  std::vector<double> weights(4);
  for (std::size_t k = 0; k < 4; ++k) {
    weights[k] = base[(k + unit) % 4];
  }
  return weights;
}

std::vector<double> XorProbabilities(std::size_t unit) {
  const std::vector<double> base = {0.4, 0.3, 0.2, 0.1};
  std::vector<double> probs(4);
  for (std::size_t k = 0; k < 4; ++k) {
    probs[k] = base[(k + unit) % 4];
  }
  return probs;
}

// Step names of unit `u` for a site prefix ("a" or "b"):
//   <prefix><u>.0   entry
//   <prefix><u>.1-4 concurrent block members
//   <prefix><u>.5-8 exclusive alternatives
//   <prefix><u>.9   exit
std::vector<std::string> UnitNames(const std::string& prefix,
                                   std::size_t unit) {
  std::vector<std::string> names;
  for (std::size_t k = 0; k < 10; ++k) {
    names.push_back(prefix + std::to_string(unit) + "." + std::to_string(k));
  }
  return names;
}

// `jitter` perturbs every branch probability/weight by an independent
// relative offset in [-magnitude, +magnitude] — the second site's
// behaviour drift, per-step rather than systematic.
ProcessModel BuildSyntheticProcess(const std::string& prefix,
                                   std::size_t num_units, Rng* jitter,
                                   double magnitude) {
  auto jit = [&](double p) {
    if (jitter == nullptr || magnitude <= 0.0) {
      return p;
    }
    return std::max(0.01,
                    p * (1.0 + (jitter->NextDouble() * 2.0 - 1.0) * magnitude));
  };
  std::vector<ProcessBlock::Ptr> units;
  std::vector<double> unit_weights;
  for (std::size_t u = 0; u < num_units; ++u) {
    const std::vector<std::string> n = UnitNames(prefix, u);
    auto act = [&](std::size_t k) { return ProcessBlock::Activity(n[k]); };
    std::vector<double> order = OrderWeights(u);
    std::vector<double> xor_probs = XorProbabilities(u);
    for (double& w : order) w = jit(w);
    for (double& q : xor_probs) q = jit(q);
    units.push_back(ProcessBlock::Sequence({
        act(0),
        ProcessBlock::Parallel({act(1), act(2), act(3), act(4)}, order),
        ProcessBlock::Choice({act(5), act(6), act(7), act(8)}, xor_probs),
        act(9),
    }));
    unit_weights.push_back(jit(1.0 + 0.25 * static_cast<double>(u)));
  }
  ProcessModel model;
  model.root = ProcessBlock::Choice(std::move(units), unit_weights);
  return model;
}

// Indices (1-based within the unit's names) of the two most likely first
// block members under the unit's order weights.
std::pair<std::size_t, std::size_t> TopTwoBlockMembers(std::size_t unit) {
  const std::vector<double> weights = OrderWeights(unit);
  std::size_t first = 0;
  for (std::size_t k = 1; k < 4; ++k) {
    if (weights[k] > weights[first]) {
      first = k;
    }
  }
  std::size_t second = first == 0 ? 1 : 0;
  for (std::size_t k = 0; k < 4; ++k) {
    if (k != first && weights[k] > weights[second]) {
      second = k;
    }
  }
  return {first + 1, second + 1};
}

}  // namespace

MatchingTask MakeSyntheticTask(const SyntheticProcessOptions& options) {
  Rng rng(options.seed);

  std::vector<std::string> names1;
  std::vector<std::string> names2;
  for (std::size_t u = 0; u < options.num_units; ++u) {
    for (const std::string& name : UnitNames("a", u)) {
      names1.push_back(name);
    }
    for (const std::string& name : UnitNames("b", u)) {
      names2.push_back(name);
    }
  }
  std::vector<std::string> vocab2 = names2;
  if (options.shuffle_target_vocabulary) {
    rng.Shuffle(vocab2);
  }

  Rng jitter = rng.Fork();
  const ProcessModel process1 =
      BuildSyntheticProcess("a", options.num_units, nullptr, 0.0);
  const ProcessModel process2 = BuildSyntheticProcess(
      "b", options.num_units, &jitter, options.site2_probability_jitter);

  MatchingTask task;
  task.name = "synthetic/units=" + std::to_string(options.num_units);
  Rng rng1 = rng.Fork();
  Rng rng2 = rng.Fork();
  task.log1 = process1.Generate(options.num_traces, rng1,
                                /*probability_perturbation=*/0.0, names1);
  task.log2 = process2.Generate(options.num_traces, rng2,
                                /*probability_perturbation=*/0.0, vocab2);

  task.ground_truth =
      Mapping(task.log1.num_events(), task.log2.num_events());
  for (std::size_t i = 0; i < names1.size(); ++i) {
    task.ground_truth.Set(task.log1.dictionary().Lookup(names1[i]).value(),
                          task.log2.dictionary().Lookup(names2[i]).value());
  }

  auto id = [&](std::size_t unit, std::size_t k) {
    return task.log1.dictionary()
        .Lookup(UnitNames("a", unit)[k])
        .value();
  };
  for (std::size_t u = 0; u < options.num_units; ++u) {
    // The unit's concurrency pattern AND(m1..m4).
    task.complex_patterns.push_back(
        Pattern::AndOfEvents({id(u, 1), id(u, 2), id(u, 3), id(u, 4)}));
    if (u % 2 == 0) {
      // Orientation pattern: entry followed by the most likely block
      // prefix — its frequency is a unit-specific *fraction* of the unit
      // frequency, separating block members that share vertex frequency.
      const auto [first, second] = TopTwoBlockMembers(u);
      task.complex_patterns.push_back(
          Pattern::SeqOfEvents({id(u, 0), id(u, first), id(u, second)}));
    }
  }
  return task;
}

}  // namespace hematch
