#include "gen/pattern_miner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <string>

#include "freq/frequency_evaluator.h"
#include "graph/dependency_graph.h"

namespace hematch {

namespace {

struct Candidate {
  Pattern pattern;
  double frequency = 0.0;
  double discriminativeness = 0.0;
};

// Shape key: the pattern's structure with event identities erased, e.g.
// SEQ(_,AND(_,_),_). Patterns with equal keys compete for the same
// structural "niche".
std::string ShapeKey(const Pattern& p) {
  if (p.is_event()) {
    return "_";
  }
  std::string key = p.kind() == Pattern::Kind::kSeq ? "SEQ(" : "AND(";
  for (std::size_t i = 0; i < p.children().size(); ++i) {
    if (i > 0) key += ',';
    key += ShapeKey(p.children()[i]);
  }
  key += ')';
  return key;
}

}  // namespace

std::vector<Pattern> MineDiscriminativePatterns(
    const EventLog& log, const PatternMinerOptions& options) {
  const DependencyGraph graph = DependencyGraph::Build(log);
  FrequencyEvaluator evaluator(log);
  std::vector<Candidate> candidates;

  // --- SEQ chains, Apriori-style over dependency edges. ---
  // Level 2 seeds: frequent edges (kept as growth frontier only; the
  // matcher already includes edge patterns).
  std::vector<std::vector<EventId>> frontier;
  for (const auto& [u, v] : graph.edges()) {
    if (u != v && graph.EdgeFrequency(u, v) >= options.min_support) {
      frontier.push_back({u, v});
    }
  }
  for (std::size_t size = 3; size <= options.max_events; ++size) {
    std::vector<std::vector<EventId>> next;
    for (const std::vector<EventId>& chain : frontier) {
      for (EventId w : graph.OutNeighbors(chain.back())) {
        if (graph.EdgeFrequency(chain.back(), w) < options.min_support) {
          continue;
        }
        if (std::find(chain.begin(), chain.end(), w) != chain.end()) {
          continue;  // Pattern events must be distinct.
        }
        std::vector<EventId> extended = chain;
        extended.push_back(w);
        const Pattern p = Pattern::SeqOfEvents(extended);
        const double freq = evaluator.Frequency(p);
        if (freq >= options.min_support) {
          candidates.push_back({p, freq, 0.0});
          next.push_back(std::move(extended));
        }
      }
    }
    frontier = std::move(next);
  }

  // --- AND pairs and triples from mutually bidirectional edges. ---
  auto bidirectional = [&](EventId u, EventId v) {
    return graph.EdgeFrequency(u, v) >= options.min_support / 2.0 &&
           graph.EdgeFrequency(v, u) >= options.min_support / 2.0;
  };
  const std::size_t n = log.num_events();
  for (EventId u = 0; u < n && options.max_events >= 2; ++u) {
    for (EventId v = u + 1; v < n; ++v) {
      if (!bidirectional(u, v)) {
        continue;
      }
      const Pattern pair = Pattern::AndOfEvents({u, v});
      const double pair_freq = evaluator.Frequency(pair);
      if (pair_freq >= options.min_support) {
        candidates.push_back({pair, pair_freq, 0.0});
      }
      for (EventId w = v + 1; w < n && options.max_events >= 3; ++w) {
        if (bidirectional(u, w) && bidirectional(v, w)) {
          const Pattern triple = Pattern::AndOfEvents({u, v, w});
          const double freq = evaluator.Frequency(triple);
          if (freq >= options.min_support) {
            candidates.push_back({triple, freq, 0.0});
          }
        }
      }
    }
  }

  // --- Rank by within-shape frequency separation. ---
  std::map<std::string, std::vector<std::size_t>> by_shape;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    by_shape[ShapeKey(candidates[i].pattern)].push_back(i);
  }
  for (const auto& [shape, members] : by_shape) {
    for (std::size_t i : members) {
      double gap = std::numeric_limits<double>::infinity();
      for (std::size_t j : members) {
        if (i != j) {
          gap = std::min(gap, std::fabs(candidates[i].frequency -
                                        candidates[j].frequency));
        }
      }
      candidates[i].discriminativeness = gap;
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     if (a.discriminativeness != b.discriminativeness) {
                       return a.discriminativeness > b.discriminativeness;
                     }
                     return a.pattern.size() > b.pattern.size();
                   });

  std::vector<Pattern> out;
  for (const Candidate& c : candidates) {
    if (out.size() >= options.max_patterns) {
      break;
    }
    out.push_back(c.pattern);
  }
  return out;
}

}  // namespace hematch
