#ifndef HEMATCH_GEN_LOG_CORRUPTOR_H_
#define HEMATCH_GEN_LOG_CORRUPTOR_H_

// Dirty-log simulation: composable corruption channels applied to an
// event log at controlled rates from the deterministic RNG, with a
// planted ground-truth report of everything that was done. This is the
// noise model behind the robustness evaluation (docs/ROBUSTNESS.md,
// "Dirty logs and partial mappings"): corrupt log2 of a planted task,
// match it back against the clean log1, and score how much of the true
// correspondence survives as a function of the noise rate.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "gen/matching_task.h"
#include "log/event_log.h"
#include "obs/metrics.h"

namespace hematch {

/// Per-channel corruption rates. All probabilities are in [0, 1]; the
/// default spec is the identity (no corruption).
struct CorruptionSpec {
  /// Per-occurrence probability of deleting an event from its trace.
  double drop_event = 0.0;
  /// Per-occurrence probability of duplicating an event in place.
  double duplicate_event = 0.0;
  /// Per-position probability of swapping two adjacent events.
  double swap_adjacent = 0.0;
  /// Per-class probability of renaming the class to a fresh opaque name
  /// (recoverable noise: frequencies are unchanged, only names lie).
  double relabel_class = 0.0;
  /// Number of junk event classes to add to the vocabulary.
  std::size_t inject_junk_classes = 0;
  /// Per-trace, per-junk-class probability of inserting one junk
  /// occurrence at a random position.
  double junk_rate = 0.0;
  /// Per-trace probability of dropping the whole trace.
  double drop_trace = 0.0;
  /// Seed of the corruption stream; equal specs corrupt identically.
  std::uint64_t seed = 1;

  /// True when every channel is off (corruption is the identity).
  bool IsIdentity() const {
    return drop_event == 0.0 && duplicate_event == 0.0 &&
           swap_adjacent == 0.0 && relabel_class == 0.0 &&
           inject_junk_classes == 0 && drop_trace == 0.0;
  }
};

/// Parses the textual spec format used by the CLI and the noise drills:
/// comma-separated `key=value` pairs with keys `drop`, `dup`, `swap`,
/// `relabel`, `junk`, `junk_rate`, `drop_trace`, `seed`, e.g.
/// `"drop=0.1,dup=0.05,junk=2,junk_rate=0.1,seed=7"`. Omitted keys keep
/// their defaults; an empty string is the identity spec. Probabilities
/// must lie in [0, 1] and `junk` is capped at 4096 classes.
Result<CorruptionSpec> ParseCorruptionSpec(std::string_view text);

/// Inverse of ParseCorruptionSpec (round-trips through it).
std::string CorruptionSpecToString(const CorruptionSpec& spec);

/// Scales every probability channel of `base` by `rate` (clamped to
/// [0, 0.95]) and the junk-class count by `rate` (rounded); the noise-
/// sweep x-axis. `rate` 0 yields the identity spec, 1 yields `base`.
CorruptionSpec ScaleCorruptionSpec(const CorruptionSpec& base, double rate);

/// Planted ground truth of one corruption run: exactly what each
/// channel did, so recovery can be scored against it.
struct CorruptionReport {
  std::size_t dropped_events = 0;     ///< Occurrences deleted.
  std::size_t duplicated_events = 0;  ///< Occurrences duplicated.
  std::size_t swapped_pairs = 0;      ///< Adjacent pairs swapped.
  std::size_t relabeled_classes = 0;  ///< Classes renamed.
  std::size_t injected_junk_classes = 0;  ///< Junk classes that occur.
  std::size_t injected_junk_events = 0;   ///< Junk occurrences inserted.
  std::size_t dropped_traces = 0;         ///< Whole traces deleted.
  /// Original class ids with no surviving occurrence (their sources
  /// have no counterpart left — the planted ⊥ set).
  std::vector<EventId> vanished_classes;

  std::string ToString() const;
};

/// A corrupted log plus the evidence needed to keep ground truth exact.
struct CorruptedLog {
  EventLog log;
  CorruptionReport report;
  /// `class_map[old_id]` = the class's id in the corrupted log, or
  /// `kInvalidEventId` when it vanished. Junk classes have no preimage.
  std::vector<EventId> class_map;
};

/// Applies `spec` to `input`. Deterministic in `spec.seed`: equal
/// inputs and specs produce identical corrupted logs. The corrupted
/// vocabulary contains exactly the classes that still occur (vanished
/// classes shrink it, junk classes grow it), so |V| mismatches arise
/// naturally.
CorruptedLog CorruptLog(const EventLog& input, const CorruptionSpec& spec);

/// Corrupts `task.log2` and rebuilds the planted ground truth over the
/// corrupted vocabulary: sources whose true image vanished are planted
/// as explicit ⊥ (Mapping::SetUnmapped). `report`, when non-null,
/// receives the corruption evidence.
MatchingTask CorruptTask(const MatchingTask& task, const CorruptionSpec& spec,
                         CorruptionReport* report = nullptr);

/// Publishes the report under the `noise.*` metric taxonomy
/// (docs/OBSERVABILITY.md): one counter per channel plus
/// `noise.vanished_classes`.
void RecordCorruptionMetrics(const CorruptionReport& report,
                             obs::MetricsRegistry& metrics);

}  // namespace hematch

#endif  // HEMATCH_GEN_LOG_CORRUPTOR_H_
