#ifndef HEMATCH_GEN_BUS_PROCESS_H_
#define HEMATCH_GEN_BUS_PROCESS_H_

#include <cstdint>

#include "gen/matching_task.h"

namespace hematch {

/// Options for the simulated bus-manufacturer workload.
struct BusProcessOptions {
  /// Traces per log (Table 3: 3,000).
  std::size_t num_traces = 3000;
  /// Master seed; every derived stream is deterministic in it.
  std::uint64_t seed = 42;
  /// Magnitude of the independent per-step probability jitter applied to
  /// the second department's process — the two sites run the "same"
  /// workflow slightly differently, so frequencies correlate without
  /// being identical.
  double site2_probability_jitter = 0.015;
  /// Intern the second log's vocabulary in a shuffled order so that the
  /// ground truth is not the identity id mapping (no matcher can win by
  /// echoing ids).
  bool shuffle_target_vocabulary = true;
};

/// Builds the "real" dataset of Section 6 as a simulation (see DESIGN.md
/// §4): an 11-event order-processing workflow of a bus manufacturer,
/// executed by two departments with independent opaque vocabularies
/// (L1: A..K, L2: 1..11), concurrent steps (AND-splits with biased
/// interleavings), alternatives (XOR-splits), and optional steps.
///
/// The task carries the paper's three complex patterns, including
/// Example 4's `SEQ(A, AND(B, C), D)` — receive order, then payment and
/// inventory check in either order, then schedule production.
///
/// The generated pair reproduces the properties that motivate the paper:
/// many events share vertex frequency 1.0; several distinct events have
/// near-identical dependency edges; only composite patterns separate
/// them.
MatchingTask MakeBusManufacturerTask(const BusProcessOptions& options = {});

}  // namespace hematch

#endif  // HEMATCH_GEN_BUS_PROCESS_H_
