#include "gen/matching_task.h"

#include <algorithm>

#include "common/check.h"
#include "log/projection.h"

namespace hematch {

MatchingTask ProjectTaskEvents(const MatchingTask& task,
                               std::size_t num_events) {
  const std::size_t n1 = task.log1.num_events();
  const std::size_t kept1 = std::min(num_events, n1);

  // Keep the id-prefix of log1 and the ground-truth images in log2.
  std::vector<bool> keep1(n1, false);
  std::vector<bool> keep2(task.log2.num_events(), false);
  for (EventId v = 0; v < kept1; ++v) {
    keep1[v] = true;
    if (task.ground_truth.num_sources() > v) {
      const EventId image = task.ground_truth.TargetOf(v);
      if (image != kInvalidEventId) {
        keep2[image] = true;
      }
    }
  }

  MatchingTask out;
  out.name = task.name + "/events=" + std::to_string(kept1);
  std::vector<EventId> map1;
  std::vector<EventId> map2;
  out.log1 = ProjectEventSubset(task.log1, keep1, &map1);
  out.log2 = ProjectEventSubset(task.log2, keep2, &map2);

  // Patterns survive iff every event survives; log1 keeps a prefix so the
  // surviving ids are unchanged, but rebuild defensively through map1.
  for (const Pattern& p : task.complex_patterns) {
    bool survives = true;
    for (EventId v : p.events()) {
      if (map1[v] == kInvalidEventId) {
        survives = false;
        break;
      }
    }
    if (survives) {
      // Prefix projection keeps ids stable.
      for (EventId v : p.events()) {
        HEMATCH_CHECK(map1[v] == v, "prefix projection must keep ids stable");
      }
      out.complex_patterns.push_back(p);
    }
  }

  out.ground_truth = Mapping(out.log1.num_events(), out.log2.num_events());
  for (EventId v = 0; v < task.ground_truth.num_sources(); ++v) {
    const EventId image = task.ground_truth.TargetOf(v);
    if (image == kInvalidEventId || map1.size() <= v ||
        map1[v] == kInvalidEventId || map2[image] == kInvalidEventId) {
      continue;
    }
    out.ground_truth.Set(map1[v], map2[image]);
  }
  return out;
}

MatchingTask SelectTaskTraces(const MatchingTask& task,
                              std::size_t num_traces) {
  MatchingTask out;
  out.name = task.name + "/traces=" + std::to_string(num_traces);
  out.log1 = SelectFirstTraces(task.log1, num_traces);
  out.log2 = SelectFirstTraces(task.log2, num_traces);
  out.complex_patterns = task.complex_patterns;
  out.ground_truth = task.ground_truth;
  return out;
}

}  // namespace hematch
