#ifndef HEMATCH_GEN_MATCHING_TASK_H_
#define HEMATCH_GEN_MATCHING_TASK_H_

#include <string>
#include <vector>

#include "core/mapping.h"
#include "log/event_log.h"
#include "pattern/pattern.h"

namespace hematch {

/// One benchmark problem: two heterogeneous logs, the complex patterns
/// declared over the first, and the ground-truth correspondence the
/// generators know by construction (standing in for the paper's "ground
/// truth of event mapping discovered manually").
struct MatchingTask {
  std::string name;
  EventLog log1;
  EventLog log2;
  /// Complex patterns over `log1`'s vocabulary (vertex/edge patterns are
  /// added by the matchers via `BuildPatternSet`).
  std::vector<Pattern> complex_patterns;
  /// True correspondence; may be partial when `log2` has events with no
  /// counterpart. Empty (0x0) for tasks without a truth (random logs).
  Mapping ground_truth{0, 0};
};

/// The paper's event-size scaling knob: projects `task` onto the first
/// `num_events` events of `log1` and, to keep the truth meaningful, onto
/// their ground-truth images in `log2`. Complex patterns that lose an
/// event are dropped; the ground truth is re-indexed.
MatchingTask ProjectTaskEvents(const MatchingTask& task,
                               std::size_t num_events);

/// The trace scaling knob: keeps the first `num_traces` traces of both
/// logs (vocabulary, patterns, and truth unchanged).
MatchingTask SelectTaskTraces(const MatchingTask& task,
                              std::size_t num_traces);

}  // namespace hematch

#endif  // HEMATCH_GEN_MATCHING_TASK_H_
