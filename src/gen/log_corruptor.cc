#include "gen/log_corruptor.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"

namespace hematch {

namespace {

constexpr std::size_t kMaxJunkClasses = 4096;

Result<double> ParseProbability(std::string_view key, std::string_view value) {
  double parsed = 0.0;
  try {
    std::size_t consumed = 0;
    parsed = std::stod(std::string(value), &consumed);
    if (consumed != value.size()) {
      throw std::invalid_argument("trailing characters");
    }
  } catch (const std::exception&) {
    return Status::InvalidArgument("corruption spec: bad value for '" +
                                   std::string(key) + "': '" +
                                   std::string(value) + "'");
  }
  if (!(parsed >= 0.0 && parsed <= 1.0)) {
    return Status::InvalidArgument("corruption spec: '" + std::string(key) +
                                   "' must be a probability in [0, 1]");
  }
  return parsed;
}

Result<std::uint64_t> ParseUint(std::string_view key, std::string_view value,
                                std::uint64_t max) {
  std::uint64_t parsed = 0;
  try {
    std::size_t consumed = 0;
    const std::string text(value);
    if (!text.empty() && (text[0] == '-' || text[0] == '+')) {
      throw std::invalid_argument("sign");
    }
    parsed = std::stoull(text, &consumed);
    if (consumed != text.size()) {
      throw std::invalid_argument("trailing characters");
    }
  } catch (const std::exception&) {
    return Status::InvalidArgument("corruption spec: bad value for '" +
                                   std::string(key) + "': '" +
                                   std::string(value) + "'");
  }
  if (parsed > max) {
    return Status::InvalidArgument("corruption spec: '" + std::string(key) +
                                   "' exceeds the maximum of " +
                                   std::to_string(max));
  }
  return parsed;
}

}  // namespace

Result<CorruptionSpec> ParseCorruptionSpec(std::string_view text) {
  CorruptionSpec spec;
  const std::string_view stripped = StripWhitespace(text);
  if (stripped.empty()) {
    return spec;
  }
  for (const std::string& field : SplitString(stripped, ',')) {
    const std::string_view entry = StripWhitespace(field);
    if (entry.empty()) {
      continue;
    }
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          "corruption spec: expected key=value, got '" + std::string(entry) +
          "'");
    }
    const std::string_view key = StripWhitespace(entry.substr(0, eq));
    const std::string_view value = StripWhitespace(entry.substr(eq + 1));
    if (key == "drop") {
      HEMATCH_ASSIGN_OR_RETURN(spec.drop_event, ParseProbability(key, value));
    } else if (key == "dup") {
      HEMATCH_ASSIGN_OR_RETURN(spec.duplicate_event,
                               ParseProbability(key, value));
    } else if (key == "swap") {
      HEMATCH_ASSIGN_OR_RETURN(spec.swap_adjacent,
                               ParseProbability(key, value));
    } else if (key == "relabel") {
      HEMATCH_ASSIGN_OR_RETURN(spec.relabel_class,
                               ParseProbability(key, value));
    } else if (key == "junk") {
      HEMATCH_ASSIGN_OR_RETURN(std::uint64_t junk,
                               ParseUint(key, value, kMaxJunkClasses));
      spec.inject_junk_classes = static_cast<std::size_t>(junk);
    } else if (key == "junk_rate") {
      HEMATCH_ASSIGN_OR_RETURN(spec.junk_rate, ParseProbability(key, value));
    } else if (key == "drop_trace") {
      HEMATCH_ASSIGN_OR_RETURN(spec.drop_trace, ParseProbability(key, value));
    } else if (key == "seed") {
      HEMATCH_ASSIGN_OR_RETURN(
          spec.seed, ParseUint(key, value, ~std::uint64_t{0}));
    } else {
      return Status::InvalidArgument("corruption spec: unknown key '" +
                                     std::string(key) + "'");
    }
  }
  return spec;
}

std::string CorruptionSpecToString(const CorruptionSpec& spec) {
  std::ostringstream out;
  // max_digits10 keeps the parse -> print -> parse round trip exact.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "drop=" << spec.drop_event << ",dup=" << spec.duplicate_event
      << ",swap=" << spec.swap_adjacent << ",relabel=" << spec.relabel_class
      << ",junk=" << spec.inject_junk_classes
      << ",junk_rate=" << spec.junk_rate << ",drop_trace=" << spec.drop_trace
      << ",seed=" << spec.seed;
  return out.str();
}

CorruptionSpec ScaleCorruptionSpec(const CorruptionSpec& base, double rate) {
  auto scale = [rate](double p) {
    return std::clamp(p * rate, 0.0, 0.95);
  };
  CorruptionSpec out;
  out.drop_event = scale(base.drop_event);
  out.duplicate_event = scale(base.duplicate_event);
  out.swap_adjacent = scale(base.swap_adjacent);
  out.relabel_class = scale(base.relabel_class);
  out.inject_junk_classes = static_cast<std::size_t>(
      std::llround(static_cast<double>(base.inject_junk_classes) * rate));
  out.junk_rate = scale(base.junk_rate);
  out.drop_trace = scale(base.drop_trace);
  out.seed = base.seed;
  return out;
}

std::string CorruptionReport::ToString() const {
  std::ostringstream out;
  out << "dropped_events=" << dropped_events
      << " duplicated_events=" << duplicated_events
      << " swapped_pairs=" << swapped_pairs
      << " relabeled_classes=" << relabeled_classes
      << " injected_junk_classes=" << injected_junk_classes
      << " injected_junk_events=" << injected_junk_events
      << " dropped_traces=" << dropped_traces
      << " vanished_classes=" << vanished_classes.size();
  return out.str();
}

CorruptedLog CorruptLog(const EventLog& input, const CorruptionSpec& spec) {
  Rng rng(spec.seed);
  const std::size_t old_n = input.num_events();
  // Junk classes live past the original id range while traces are
  // rewritten; interning below maps everything to dense corrupted ids.
  const std::size_t junk_base = old_n;

  // Relabel channel: pick the renamed classes up front so the decision
  // stream does not depend on trace content.
  std::vector<char> relabeled(old_n, 0);
  CorruptedLog out;
  if (spec.relabel_class > 0.0) {
    for (EventId c = 0; c < old_n; ++c) {
      if (rng.NextBool(spec.relabel_class)) {
        relabeled[c] = 1;
        ++out.report.relabeled_classes;
      }
    }
  }

  // Rewrite traces in old-id space, one forked stream per trace so the
  // noise in trace k does not depend on the lengths of traces before it.
  std::vector<Trace> corrupted;
  corrupted.reserve(input.num_traces());
  std::vector<char> junk_seen(spec.inject_junk_classes, 0);
  for (const Trace& trace : input.traces()) {
    Rng trace_rng = rng.Fork();
    if (spec.drop_trace > 0.0 && trace_rng.NextBool(spec.drop_trace)) {
      ++out.report.dropped_traces;
      continue;
    }
    Trace rewritten;
    rewritten.reserve(trace.size() + 2);
    for (EventId e : trace) {
      if (spec.drop_event > 0.0 && trace_rng.NextBool(spec.drop_event)) {
        ++out.report.dropped_events;
        continue;
      }
      rewritten.push_back(e);
      if (spec.duplicate_event > 0.0 &&
          trace_rng.NextBool(spec.duplicate_event)) {
        rewritten.push_back(e);
        ++out.report.duplicated_events;
      }
    }
    if (spec.swap_adjacent > 0.0 && rewritten.size() >= 2) {
      for (std::size_t i = 0; i + 1 < rewritten.size(); ++i) {
        if (trace_rng.NextBool(spec.swap_adjacent)) {
          std::swap(rewritten[i], rewritten[i + 1]);
          ++out.report.swapped_pairs;
          ++i;  // Do not cascade a swapped event down the trace.
        }
      }
    }
    for (std::size_t k = 0; k < spec.inject_junk_classes; ++k) {
      if (spec.junk_rate > 0.0 && trace_rng.NextBool(spec.junk_rate)) {
        const std::size_t pos = static_cast<std::size_t>(
            trace_rng.NextBounded(rewritten.size() + 1));
        rewritten.insert(rewritten.begin() + static_cast<std::ptrdiff_t>(pos),
                         static_cast<EventId>(junk_base + k));
        ++out.report.injected_junk_events;
        junk_seen[k] = 1;
      }
    }
    corrupted.push_back(std::move(rewritten));
  }

  // Build the corrupted log: intern exactly the classes that survive,
  // in original id order (then junk), so ids stay stable where possible
  // and vanished classes genuinely leave the vocabulary.
  std::vector<char> occurs(junk_base + spec.inject_junk_classes, 0);
  for (const Trace& trace : corrupted) {
    for (EventId e : trace) {
      occurs[e] = 1;
    }
  }
  out.class_map.assign(old_n, kInvalidEventId);
  std::vector<EventId> rewrite(occurs.size(), kInvalidEventId);
  for (EventId c = 0; c < old_n; ++c) {
    if (occurs[c] == 0) {
      out.report.vanished_classes.push_back(c);
      continue;
    }
    const std::string name =
        relabeled[c] != 0 ? "renamed_" + std::to_string(c)
                          : input.dictionary().Name(c);
    const EventId id = out.log.InternEvent(name);
    out.class_map[c] = id;
    rewrite[c] = id;
  }
  for (std::size_t k = 0; k < spec.inject_junk_classes; ++k) {
    if (occurs[junk_base + k] == 0) {
      continue;
    }
    rewrite[junk_base + k] = out.log.InternEvent("junk_" + std::to_string(k));
    ++out.report.injected_junk_classes;
  }
  for (Trace& trace : corrupted) {
    for (EventId& e : trace) {
      e = rewrite[e];
      HEMATCH_DCHECK(e != kInvalidEventId, "corrupted trace kept a dead id");
    }
    out.log.AddTrace(std::move(trace));
  }
  return out;
}

MatchingTask CorruptTask(const MatchingTask& task, const CorruptionSpec& spec,
                         CorruptionReport* report) {
  CorruptedLog corrupted = CorruptLog(task.log2, spec);
  MatchingTask out;
  out.name = task.name + "/corrupt(" + CorruptionSpecToString(spec) + ")";
  out.log1 = task.log1;
  out.log2 = std::move(corrupted.log);
  out.complex_patterns = task.complex_patterns;

  // Rebuild the planted truth over the corrupted vocabulary. A source
  // whose true image vanished has no counterpart left: plant it as
  // explicit ⊥ so recovery scoring can tell "should be unmapped" from
  // "truth unknown".
  out.ground_truth =
      Mapping(out.log1.num_events(), out.log2.num_events());
  const Mapping& truth = task.ground_truth;
  for (EventId v = 0; v < truth.num_sources(); ++v) {
    const EventId image = truth.TargetOf(v);
    if (image == kInvalidEventId) {
      if (truth.IsSourceNull(v)) {
        out.ground_truth.SetUnmapped(v);
      }
      continue;
    }
    const EventId mapped = corrupted.class_map[image];
    if (mapped == kInvalidEventId) {
      out.ground_truth.SetUnmapped(v);
    } else {
      out.ground_truth.Set(v, mapped);
    }
  }
  if (report != nullptr) {
    *report = std::move(corrupted.report);
  }
  return out;
}

void RecordCorruptionMetrics(const CorruptionReport& report,
                             obs::MetricsRegistry& metrics) {
  metrics.GetCounter("noise.dropped_events")->Increment(report.dropped_events);
  metrics.GetCounter("noise.duplicated_events")
      ->Increment(report.duplicated_events);
  metrics.GetCounter("noise.swapped_pairs")->Increment(report.swapped_pairs);
  metrics.GetCounter("noise.relabeled_classes")
      ->Increment(report.relabeled_classes);
  metrics.GetCounter("noise.injected_junk_classes")
      ->Increment(report.injected_junk_classes);
  metrics.GetCounter("noise.injected_junk_events")
      ->Increment(report.injected_junk_events);
  metrics.GetCounter("noise.dropped_traces")->Increment(report.dropped_traces);
  metrics.GetCounter("noise.vanished_classes")
      ->Increment(report.vanished_classes.size());
}

}  // namespace hematch
