#include "gen/process_model.h"

#include <algorithm>

#include "common/check.h"

namespace hematch {

namespace {

double ClampProbability(double p) {
  return std::clamp(p, 0.0, 1.0);
}

}  // namespace

ProcessBlock::Ptr ProcessBlock::Activity(std::string name) {
  auto block = std::shared_ptr<ProcessBlock>(new ProcessBlock(Kind::kActivity));
  block->name_ = std::move(name);
  return block;
}

ProcessBlock::Ptr ProcessBlock::Sequence(std::vector<Ptr> children) {
  HEMATCH_CHECK(!children.empty(), "Sequence needs children");
  auto block = std::shared_ptr<ProcessBlock>(new ProcessBlock(Kind::kSequence));
  block->children_ = std::move(children);
  return block;
}

ProcessBlock::Ptr ProcessBlock::Parallel(std::vector<Ptr> children,
                                         std::vector<double> order_weights) {
  HEMATCH_CHECK(!children.empty(), "Parallel needs children");
  if (order_weights.empty()) {
    order_weights.assign(children.size(), 1.0);
  }
  HEMATCH_CHECK(order_weights.size() == children.size(),
                "Parallel weight/children size mismatch");
  auto block = std::shared_ptr<ProcessBlock>(new ProcessBlock(Kind::kParallel));
  block->children_ = std::move(children);
  block->weights_ = std::move(order_weights);
  return block;
}

ProcessBlock::Ptr ProcessBlock::Choice(std::vector<Ptr> children,
                                       std::vector<double> probabilities) {
  HEMATCH_CHECK(!children.empty(), "Choice needs children");
  HEMATCH_CHECK(probabilities.size() == children.size(),
                "Choice probability/children size mismatch");
  auto block = std::shared_ptr<ProcessBlock>(new ProcessBlock(Kind::kChoice));
  block->children_ = std::move(children);
  block->weights_ = std::move(probabilities);
  return block;
}

ProcessBlock::Ptr ProcessBlock::Loop(Ptr child, double repeat_probability,
                                     std::size_t max_repeats) {
  HEMATCH_CHECK(child != nullptr, "Loop needs a child");
  HEMATCH_CHECK(repeat_probability >= 0.0 && repeat_probability <= 1.0,
                "Loop probability out of range");
  auto block = std::shared_ptr<ProcessBlock>(new ProcessBlock(Kind::kLoop));
  block->children_ = {std::move(child)};
  block->weights_ = {repeat_probability, static_cast<double>(max_repeats)};
  return block;
}

ProcessBlock::Ptr ProcessBlock::Optional(Ptr child, double p) {
  HEMATCH_CHECK(child != nullptr, "Optional needs a child");
  HEMATCH_CHECK(p >= 0.0 && p <= 1.0, "Optional probability out of range");
  auto block = std::shared_ptr<ProcessBlock>(new ProcessBlock(Kind::kOptional));
  block->children_ = {std::move(child)};
  block->weights_ = {p};
  return block;
}

void ProcessBlock::Simulate(Rng& rng, double probability_perturbation,
                            std::vector<std::string>& out) const {
  switch (kind_) {
    case Kind::kActivity:
      out.push_back(name_);
      return;
    case Kind::kSequence:
      for (const Ptr& child : children_) {
        child->Simulate(rng, probability_perturbation, out);
      }
      return;
    case Kind::kParallel: {
      // Draw an order by weighted sampling without replacement; children
      // with larger weights tend to come first, biasing the distribution
      // over permutations without forbidding any.
      std::vector<double> weights = weights_;
      std::vector<std::size_t> remaining(children_.size());
      for (std::size_t i = 0; i < remaining.size(); ++i) {
        remaining[i] = i;
      }
      while (!remaining.empty()) {
        const std::size_t pick = rng.NextWeighted(weights);
        children_[remaining[pick]]->Simulate(rng, probability_perturbation,
                                             out);
        weights.erase(weights.begin() + static_cast<std::ptrdiff_t>(pick));
        remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pick));
      }
      return;
    }
    case Kind::kChoice: {
      // Choice weights are *relative* (NextWeighted normalizes), so only
      // non-negativity must be preserved under perturbation.
      std::vector<double> probs = weights_;
      for (double& p : probs) {
        p = std::max(0.0, p + probability_perturbation);
      }
      const std::size_t pick = rng.NextWeighted(probs);
      children_[pick]->Simulate(rng, probability_perturbation, out);
      return;
    }
    case Kind::kOptional: {
      const double p =
          ClampProbability(weights_[0] + probability_perturbation);
      if (rng.NextBool(p)) {
        children_[0]->Simulate(rng, probability_perturbation, out);
      }
      return;
    }
    case Kind::kLoop: {
      const double p =
          ClampProbability(weights_[0] + probability_perturbation);
      const std::size_t max_repeats = static_cast<std::size_t>(weights_[1]);
      children_[0]->Simulate(rng, probability_perturbation, out);
      for (std::size_t repeat = 0;
           repeat < max_repeats && rng.NextBool(p); ++repeat) {
        children_[0]->Simulate(rng, probability_perturbation, out);
      }
      return;
    }
  }
}

void ProcessBlock::CollectActivities(std::vector<std::string>& out) const {
  if (kind_ == Kind::kActivity) {
    out.push_back(name_);
    return;
  }
  for (const Ptr& child : children_) {
    child->CollectActivities(out);
  }
}

EventLog ProcessModel::Generate(
    std::size_t num_traces, Rng& rng, double probability_perturbation,
    const std::vector<std::string>& vocabulary_order) const {
  HEMATCH_CHECK(root != nullptr, "ProcessModel has no root");
  EventLog log;
  if (vocabulary_order.empty()) {
    std::vector<std::string> canonical;
    root->CollectActivities(canonical);
    for (const std::string& name : canonical) {
      log.InternEvent(name);
    }
  } else {
    for (const std::string& name : vocabulary_order) {
      log.InternEvent(name);
    }
  }
  std::vector<std::string> names;
  for (std::size_t i = 0; i < num_traces; ++i) {
    names.clear();
    root->Simulate(rng, probability_perturbation, names);
    if (truncate_probability > 0.0 && names.size() > 1 &&
        rng.NextBool(truncate_probability)) {
      const std::size_t keep = static_cast<std::size_t>(rng.NextInRange(
          1, static_cast<std::int64_t>(names.size())));
      names.resize(keep);
    }
    log.AddTraceByNames(names);
  }
  return log;
}

}  // namespace hematch
