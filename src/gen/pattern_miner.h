#ifndef HEMATCH_GEN_PATTERN_MINER_H_
#define HEMATCH_GEN_PATTERN_MINER_H_

#include <cstddef>
#include <vector>

#include "log/event_log.h"
#include "pattern/pattern.h"

namespace hematch {

/// Options for the frequent-pattern miner.
struct PatternMinerOptions {
  /// Minimum normalized frequency for a pattern to be kept.
  double min_support = 0.10;
  /// Largest pattern size (number of events).
  std::size_t max_events = 4;
  /// How many patterns to return after ranking.
  std::size_t max_patterns = 10;
};

/// Discovers complex patterns from an event log, standing in for the
/// paper's external sources of patterns ("available in business process
/// analyzing systems" or "discovered from data [8], [9], [10]").
///
/// Candidate generation is Apriori-style over the dependency graph —
/// pattern frequency is anti-monotone under both SEQ extension and AND
/// composition, so infrequent prefixes prune their extensions:
///  * SEQ chains grown one edge at a time from frequent dependency edges;
///  * AND pairs/triples from mutually bidirectional frequent edges.
///
/// Ranking follows the paper's Section 2 guideline — "an event pattern is
/// probably discriminative if ... its frequency is different from other
/// patterns with the same structure": each pattern scores the minimum
/// frequency gap to any other candidate with the same shape (higher is
/// better; unique shapes score highest), with larger patterns preferred
/// on ties. Vertex- and edge-sized candidates are excluded (the matcher
/// adds those itself).
std::vector<Pattern> MineDiscriminativePatterns(
    const EventLog& log, const PatternMinerOptions& options = {});

}  // namespace hematch

#endif  // HEMATCH_GEN_PATTERN_MINER_H_
