#include "gen/random_logs.h"

#include <string>

#include "common/check.h"
#include "common/rng.h"

namespace hematch {

namespace {

EventLog GenerateRandomLog(const RandomLogsOptions& options,
                           const std::string& name_prefix, Rng& rng) {
  EventLog log;
  for (std::size_t v = 0; v < options.num_events; ++v) {
    log.InternEvent(name_prefix + std::to_string(v));
  }
  for (std::size_t t = 0; t < options.num_traces; ++t) {
    const std::size_t length = static_cast<std::size_t>(rng.NextInRange(
        static_cast<std::int64_t>(options.min_trace_length),
        static_cast<std::int64_t>(options.max_trace_length)));
    Trace trace;
    trace.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
      trace.push_back(static_cast<EventId>(
          rng.NextBounded(options.num_events)));
    }
    log.AddTrace(std::move(trace));
  }
  return log;
}

}  // namespace

MatchingTask MakeRandomTask(const RandomLogsOptions& options) {
  HEMATCH_CHECK(options.min_trace_length >= 1 &&
                    options.min_trace_length <= options.max_trace_length,
                "invalid trace length range");
  HEMATCH_CHECK(options.num_events >= 1, "need at least one event");
  Rng rng(options.seed);
  Rng rng1 = rng.Fork();
  Rng rng2 = rng.Fork();

  MatchingTask task;
  task.name = "random/seed=" + std::to_string(options.seed);
  task.log1 = GenerateRandomLog(options, "A", rng1);
  task.log2 = GenerateRandomLog(options, "X", rng2);
  // Independent random logs: no ground truth, no complex patterns.
  task.ground_truth = Mapping(task.log1.num_events(), task.log2.num_events());
  return task;
}

}  // namespace hematch
