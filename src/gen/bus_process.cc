#include "gen/bus_process.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "gen/process_model.h"

namespace hematch {

namespace {

// The 11-step order-processing workflow. `n` carries the site's opaque
// names for steps 0..10, whose real-world meanings are:
//   0 receive order, 1 payment, 2 check inventory, 3 schedule production,
//   4 quality audit (optional), 5 assemble body, 6 install engine,
//   7 ship goods, 8 local pickup, 9 invoice, 10 collect feedback (opt.).
//
// `jitter` perturbs every branch probability by an independent uniform
// offset in [-magnitude, +magnitude]: the second department runs the
// "same" process with slightly different per-step behaviour (the paper's
// heterogeneity), rather than a uniform drift that would re-rank every
// frequency systematically.
ProcessModel BuildOrderProcess(const std::vector<std::string>& n, Rng* jitter,
                               double magnitude) {
  HEMATCH_CHECK(n.size() == 11, "order process needs 11 step names");
  auto jit = [&](double p) {
    if (jitter == nullptr || magnitude <= 0.0) {
      return p;
    }
    return std::clamp(p + (jitter->NextDouble() * 2.0 - 1.0) * magnitude,
                      0.01, 0.999);
  };
  auto act = [&](std::size_t i) { return ProcessBlock::Activity(n[i]); };
  // A step whose completion is occasionally missing from the extracted
  // log (abandoned orders, logging glitches) — step-specific rates give
  // events the near-but-not-exactly-tied frequency fingerprints real ERP
  // logs show, while leaving several events exactly tied at 1.0.
  auto recorded = [&](std::size_t i, double p) {
    return ProcessBlock::Optional(act(i), jit(p));
  };
  ProcessModel model;
  model.root = ProcessBlock::Sequence({
      act(0),
      // Payment and inventory check run concurrently; payment tends to be
      // entered first (biased interleaving -> asymmetric edge frequencies).
      ProcessBlock::Parallel({recorded(1, 0.98), recorded(2, 0.95)},
                             {jit(0.65), jit(0.35)}),
      act(3),
      ProcessBlock::Optional(act(4), jit(0.60)),
      ProcessBlock::Parallel({act(5), act(6)},
                             {jit(0.80), jit(0.20)}),
      ProcessBlock::Choice({act(7), act(8)}, {jit(0.75), jit(0.25)}),
      recorded(9, 0.90),
      ProcessBlock::Optional(act(10), jit(0.45)),
  });
  return model;
}

}  // namespace

MatchingTask MakeBusManufacturerTask(const BusProcessOptions& options) {
  Rng rng(options.seed);

  std::vector<std::string> names1 = {"A", "B", "C", "D", "E", "F",
                                     "G", "H", "I", "J", "K"};
  std::vector<std::string> names2;
  for (int i = 1; i <= 11; ++i) {
    names2.push_back(std::to_string(i));
  }

  // L2's vocabulary is interned in a shuffled order so that the ground
  // truth is not the identity id mapping.
  std::vector<std::string> vocab2 = names2;
  if (options.shuffle_target_vocabulary) {
    rng.Shuffle(vocab2);
  }

  Rng jitter = rng.Fork();
  ProcessModel process1 = BuildOrderProcess(names1, /*jitter=*/nullptr, 0.0);
  ProcessModel process2 = BuildOrderProcess(
      names2, &jitter, options.site2_probability_jitter);

  MatchingTask task;
  task.name = "bus-manufacturer";
  Rng rng1 = rng.Fork();
  Rng rng2 = rng.Fork();
  task.log1 = process1.Generate(options.num_traces, rng1,
                                /*probability_perturbation=*/0.0, names1);
  task.log2 = process2.Generate(options.num_traces, rng2,
                                /*probability_perturbation=*/0.0, vocab2);

  // Ground truth: step i of site 1 corresponds to step i of site 2.
  task.ground_truth =
      Mapping(task.log1.num_events(), task.log2.num_events());
  for (std::size_t i = 0; i < names1.size(); ++i) {
    const EventId v1 = task.log1.dictionary().Lookup(names1[i]).value();
    const EventId v2 = task.log2.dictionary().Lookup(names2[i]).value();
    task.ground_truth.Set(v1, v2);
  }

  // The three curated complex patterns (Table 3: 3 patterns), expressed
  // over L1 ids. Step names map to ids through the dictionary.
  auto id = [&](std::size_t i) {
    return task.log1.dictionary().Lookup(names1[i]).value();
  };
  auto seq = [](std::vector<Pattern> children) {
    return Pattern::Seq(std::move(children)).value();
  };
  auto both = [](EventId u, EventId v) {
    return Pattern::AndOfEvents({u, v});
  };
  // Example 4's pattern: order received, then payment & inventory check
  // in either order, then production scheduled.
  std::vector<Pattern> p1;
  p1.push_back(Pattern::Event(id(0)));
  p1.push_back(both(id(1), id(2)));
  p1.push_back(Pattern::Event(id(3)));
  task.complex_patterns.push_back(seq(std::move(p1)));
  // Assembly & engine installation back-to-back, then shipping.
  std::vector<Pattern> p2;
  p2.push_back(both(id(5), id(6)));
  p2.push_back(Pattern::Event(id(7)));
  task.complex_patterns.push_back(seq(std::move(p2)));
  // Quality audit immediately before the final assembly block.
  std::vector<Pattern> p3;
  p3.push_back(Pattern::Event(id(4)));
  p3.push_back(both(id(5), id(6)));
  task.complex_patterns.push_back(seq(std::move(p3)));
  return task;
}

}  // namespace hematch
