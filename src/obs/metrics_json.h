#ifndef HEMATCH_OBS_METRICS_JSON_H_
#define HEMATCH_OBS_METRICS_JSON_H_

// JSON (de)serialization of telemetry snapshots. The schema is documented
// in docs/OBSERVABILITY.md:
//
//   {
//     "schema": "hematch.telemetry.v1",
//     "counters":   { "<name>": <uint>, ... },
//     "gauges":     { "<name>": <double>, ... },
//     "histograms": { "<name>": { "bounds": [..], "counts": [..],
//                                 "sum": <double> }, ... }
//   }
//
// `TelemetryFromJson` parses exactly what `TelemetryToJson` emits, so
// snapshots round-trip; it is deliberately strict about the schema but
// tolerant of whitespace and key order.

#include <string>
#include <string_view>

#include "common/result.h"
#include "obs/telemetry.h"

namespace hematch::obs {

/// Serializes `snapshot` as a pretty-printed JSON object. `depth` shifts
/// the whole object right by `depth * indent` spaces (for embedding into
/// a larger document); the first line is not indented so the object can
/// follow a key on the same line.
std::string TelemetryToJson(const TelemetrySnapshot& snapshot, int indent = 2,
                            int depth = 0);

/// Parses a snapshot serialized by `TelemetryToJson`. Unknown top-level
/// keys are ignored; malformed JSON or mistyped values are a ParseError.
Result<TelemetrySnapshot> TelemetryFromJson(std::string_view json);

/// Writes `TelemetryToJson(snapshot)` to `path` (with a trailing
/// newline), creating or truncating the file.
Status WriteTelemetryJson(const TelemetrySnapshot& snapshot,
                          const std::string& path);

/// One heartbeat record as a single JSON line (no trailing newline),
/// for JSONL streams emitted during long runs:
///
///   { "schema": "hematch.heartbeat.v1", "seq": <n>,
///     "elapsed_ms": <double>, "counters": {..}, "gauges": {..},
///     "percentiles": { "<hist>": {"p50":..,"p95":..,"p99":..}, .. } }
///
/// Histograms are reduced to their percentile views to keep lines
/// short; the final full snapshot still carries the buckets.
///
/// When `windowed` is non-null its entries are folded into the same
/// maps with a `_w60` suffix (e.g. `serve.latency_ms_w60`), so a
/// long-running server reports trailing-window percentiles alongside
/// the frozen lifetime ones.
std::string TelemetryToHeartbeatLine(const TelemetrySnapshot& snapshot,
                                     std::uint64_t seq, double elapsed_ms,
                                     const TelemetrySnapshot* windowed =
                                         nullptr);

/// JSON string escaping for the small exporter surface (quotes,
/// backslashes, control characters).
std::string JsonEscape(std::string_view text);

/// Round-trippable JSON representation of a double (shortest form that
/// parses back exactly; non-finite values render as 0).
std::string JsonNumber(double value);

}  // namespace hematch::obs

#endif  // HEMATCH_OBS_METRICS_JSON_H_
