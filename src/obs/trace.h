#ifndef HEMATCH_OBS_TRACE_H_
#define HEMATCH_OBS_TRACE_H_

/// \file
/// Structured span tracing for single-run profiling.
///
/// Counters (obs/metrics.h) answer "how much, in aggregate"; spans
/// answer "where did *this* run's wall-clock go". A `TraceRecorder`
/// collects timestamped events into per-thread ring buffers and exports
/// them as Chrome/Perfetto trace-event JSON, so a portfolio race — three
/// strategy threads, a watchdog, ParallelFor precompute workers — shows
/// up as a real timeline instead of a pile of counters.
///
/// Design points:
///  - `ScopedSpan` is RAII: construction stamps the start, destruction
///    records one complete event. With a null recorder the constructor
///    stores a null pointer and the destructor does one compare — the
///    same zero-cost-when-off contract as the null `SearchTracer`.
///  - Each thread writes to its own bounded ring buffer (registered
///    once under the recorder mutex, then reached via a thread-local
///    cache), so recording is one uncontended lock per event, never a
///    global choke point. Full rings overwrite their oldest events and
///    count the drops.
///  - Spans auto-parent under the innermost open span on the same
///    thread. Cross-thread attachment (a portfolio strategy thread
///    hanging under the run root) passes the parent span id explicitly.
///  - Timestamps are steady-clock microseconds since the recorder was
///    created, matching the `ts`/`dur` unit of the Chrome trace format.
///
/// The recorder is installed on `MatchingContext` (and passed through
/// `PortfolioOptions` / `ParallelForOptions`); code that only has free
/// functions in its signature — log ingestion — reads the thread-local
/// ambient recorder installed by `AmbientTraceScope`.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace hematch::obs {

/// Span identifier. 0 means "no span" (a root); ids are unique within
/// one recorder and never reused.
using SpanId = std::uint64_t;

/// Passed as the `parent` argument to mean "use the innermost open span
/// on this thread" (the default). Pass 0 to force a root span, or a
/// concrete id for an explicit cross-thread link.
inline constexpr SpanId kAutoParent = std::numeric_limits<SpanId>::max();

/// One numeric annotation on an event (rendered under `args` in the
/// Chrome export). Numeric-only keeps recording allocation-light.
struct TraceArg {
  std::string key;
  double value = 0.0;
};

enum class TraceEventKind : std::uint8_t {
  kSpan,     ///< Complete span: [ts_us, ts_us + dur_us).
  kInstant,  ///< Point event (watchdog fired, degrade step, ...).
  kCounter,  ///< Sampled value over time (open-list size, bound gap).
};

/// One recorded event. `tid` is the recorder's own dense thread index,
/// not the OS thread id — stable across runs and compact in the export.
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kSpan;
  std::string name;
  std::string category;
  SpanId id = 0;      ///< Span id (spans only).
  SpanId parent = 0;  ///< Enclosing span id, 0 for roots.
  std::uint32_t tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;  ///< Spans only.
  double value = 0.0;   ///< Counters only.
  std::vector<TraceArg> args;
};

struct TraceRecorderOptions {
  /// Events retained per thread before the ring overwrites its oldest
  /// entry. Dropped (overwritten) events are counted.
  std::size_t per_thread_capacity = 1 << 16;
};

/// Thread-safe event sink. Create one per run (or per process), hand
/// out raw pointers; a null pointer everywhere means "tracing off".
///
/// Lifetime: the recorder must outlive every thread that records into
/// it. The portfolio runner keeps abandoned strategy threads alive past
/// `Run()`, so it takes `shared_ptr` ownership (see exec/portfolio.h);
/// everything join-before-return can use a raw pointer.
class TraceRecorder {
 public:
  explicit TraceRecorder(TraceRecorderOptions options = {});
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Microseconds since the recorder was created (steady clock).
  double NowUs() const;

  /// Fresh unique span id.
  SpanId NextSpanId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  /// Records a finished span. Normally called by ~ScopedSpan.
  void RecordSpan(std::string name, std::string category, SpanId id,
                  SpanId parent, double ts_us, double dur_us,
                  std::vector<TraceArg> args);

  /// Records a point event, parented under the innermost open span on
  /// this thread unless `parent` is given.
  void RecordInstant(std::string name, std::string category,
                     std::vector<TraceArg> args = {},
                     SpanId parent = kAutoParent);

  /// Records a counter sample (`name` tracks `value` over time).
  void RecordCounter(std::string name, double value);

  /// Names the calling thread in the export ("portfolio-worker-1").
  void SetThreadName(std::string name);

  /// Innermost open span on the calling thread, 0 if none.
  SpanId CurrentSpan() const;

  /// Copies out every buffered event, oldest first per thread, merged
  /// and sorted by timestamp. Safe against concurrent recording.
  std::vector<TraceEvent> Snapshot() const;

  /// Thread index -> name for threads that called SetThreadName.
  std::map<std::uint32_t, std::string> ThreadNames() const;

  /// Events lost to ring overwrite, across all threads.
  std::uint64_t dropped_events() const;

  /// Serializes the buffered events as Chrome trace-event JSON
  /// (chrome://tracing and https://ui.perfetto.dev both load it).
  std::string ToChromeJson() const;

  /// Writes `ToChromeJson()` to `path`, creating or truncating.
  Status WriteChromeJson(const std::string& path) const;

 private:
  friend class ScopedSpan;
  struct ThreadBuffer;

  ThreadBuffer* BufferForThisThread();
  void PushEvent(TraceEvent event);
  /// Resolves kAutoParent against this thread's open-span stack.
  SpanId ResolveParent(SpanId requested) const;

  const std::size_t capacity_;
  const std::uint64_t generation_;  ///< Guards thread-local caches.
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<SpanId> next_id_{1};

  mutable std::mutex mu_;  ///< Guards buffer registration only.
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span. Records one complete event on destruction; with a null
/// recorder every member function is a no-op.
///
///   obs::ScopedSpan span(recorder, "match.astar_tight", "core");
///   span.AddArg("nodes", visited);
///
/// Cross-thread attachment (the portfolio strategy thread pattern):
///
///   obs::ScopedSpan span(recorder, "portfolio.strategy.x", "exec",
///                        run_root_id);
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, std::string_view name,
             std::string_view category = "", SpanId parent = kAutoParent);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// True when a recorder is installed and the span will be recorded.
  bool active() const { return recorder_ != nullptr; }

  /// This span's id (0 when inactive) — pass to workers as their
  /// explicit parent.
  SpanId id() const { return id_; }

  /// Attaches a numeric annotation, exported under `args`.
  void AddArg(std::string_view key, double value);

 private:
  TraceRecorder* recorder_;
  SpanId id_ = 0;
  SpanId parent_ = 0;
  double start_us_ = 0.0;
  std::string name_;
  std::string category_;
  std::vector<TraceArg> args_;
};

/// Convenience wrappers that accept a null recorder.
void TraceInstant(TraceRecorder* recorder, std::string_view name,
                  std::string_view category = "",
                  std::vector<TraceArg> args = {});
void TraceCounter(TraceRecorder* recorder, std::string_view name,
                  double value);

/// Thread-local ambient recorder for code whose signatures predate
/// tracing (log ingestion free functions). Null by default.
TraceRecorder* AmbientTraceRecorder();

/// Installs `recorder` as the calling thread's ambient recorder for the
/// scope's lifetime, restoring the previous one on destruction.
class AmbientTraceScope {
 public:
  explicit AmbientTraceScope(TraceRecorder* recorder);
  ~AmbientTraceScope();

  AmbientTraceScope(const AmbientTraceScope&) = delete;
  AmbientTraceScope& operator=(const AmbientTraceScope&) = delete;

 private:
  TraceRecorder* previous_;
};

}  // namespace hematch::obs

#endif  // HEMATCH_OBS_TRACE_H_
