#ifndef HEMATCH_OBS_WINDOW_H_
#define HEMATCH_OBS_WINDOW_H_

/// \file
/// Windowed metric aggregation: "what is p99 *right now*", not "since
/// process start".
///
/// The cumulative primitives in obs/metrics.h are the right shape for a
/// single run, but a long-lived server's lifetime histogram freezes —
/// after a day of traffic, an hour of bad latency barely moves the
/// cumulative p99. `WindowedCounter` and `WindowedHistogram` fix that
/// with the standard rotating-bucket construction: the window is split
/// into `slices` equal time slices, each slice accumulates its own
/// cumulative cells, and a read merges the slices that fall inside the
/// window. Rotation happens lazily on write *and* read, so an idle
/// stretch correctly decays to zero without a timer thread.
///
/// The merged view covers between `(slices-1)/slices` and a full
/// window's worth of wall-clock (the current slice is partial) — the
/// usual tradeoff; more slices mean a smoother edge. All operations
/// take an explicit `now` so tests can drive the clock; the defaulted
/// overloads read the steady clock.
///
/// Thread-safety: a mutex per instance. These sit on request
/// boundaries (one observe per served request), never in matcher inner
/// loops, so a lock per event is fine — and rotation makes lock-free
/// cells much less attractive than in the cumulative primitives.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/telemetry.h"

namespace hematch::obs {

/// Shape of one rotating window.
struct WindowOptions {
  /// Total window span. The merged read covers roughly the trailing
  /// `window_ms` (the current slice is partial).
  double window_ms = 60000.0;
  /// Number of rotating slices; more slices = finer expiry granularity.
  int slices = 6;
};

/// Event count over a trailing window.
class WindowedCounter {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit WindowedCounter(WindowOptions options = {},
                           TimePoint start = std::chrono::steady_clock::now());

  WindowedCounter(const WindowedCounter&) = delete;
  WindowedCounter& operator=(const WindowedCounter&) = delete;

  void Add(std::uint64_t n, TimePoint now);
  void Add(std::uint64_t n = 1) { Add(n, std::chrono::steady_clock::now()); }

  /// Events in the trailing window.
  std::uint64_t WindowTotal(TimePoint now) const;
  std::uint64_t WindowTotal() const {
    return WindowTotal(std::chrono::steady_clock::now());
  }

  /// Events per second over the window span.
  double WindowRatePerSec(TimePoint now) const;
  double WindowRatePerSec() const {
    return WindowRatePerSec(std::chrono::steady_clock::now());
  }

  double window_ms() const { return options_.window_ms; }

 private:
  /// Advances the ring so `now` falls in the current slice, zeroing
  /// slices skipped over. Caller holds `mu_`.
  void RotateLocked(TimePoint now) const;

  WindowOptions options_;
  TimePoint start_;
  double slice_ms_;
  mutable std::mutex mu_;
  mutable std::vector<std::uint64_t> slices_;
  mutable std::int64_t current_index_ = 0;  ///< Absolute slice number.
};

/// Fixed-bucket histogram over a trailing window. Bucket layout matches
/// obs::Histogram (inclusive upper edges + one overflow bucket), and the
/// merged read comes back as a `HistogramSnapshot`, so the existing
/// percentile interpolation and exporters apply unchanged.
class WindowedHistogram {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit WindowedHistogram(
      std::vector<double> bounds, WindowOptions options = {},
      TimePoint start = std::chrono::steady_clock::now());

  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  void Observe(double v, TimePoint now);
  void Observe(double v) { Observe(v, std::chrono::steady_clock::now()); }

  /// Counts and sum merged over the trailing window.
  HistogramSnapshot WindowSnapshot(TimePoint now) const;
  HistogramSnapshot WindowSnapshot() const {
    return WindowSnapshot(std::chrono::steady_clock::now());
  }

  const std::vector<double>& bounds() const { return bounds_; }
  double window_ms() const { return options_.window_ms; }

 private:
  struct Slice {
    std::vector<std::uint64_t> counts;
    double sum = 0.0;
  };

  void RotateLocked(TimePoint now) const;

  std::vector<double> bounds_;
  WindowOptions options_;
  TimePoint start_;
  double slice_ms_;
  mutable std::mutex mu_;
  mutable std::vector<Slice> slices_;
  mutable std::int64_t current_index_ = 0;
};

}  // namespace hematch::obs

#endif  // HEMATCH_OBS_WINDOW_H_
