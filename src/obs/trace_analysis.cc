#include "obs/trace_analysis.h"

#include <algorithm>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>
#include <utility>

namespace hematch::obs {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : fields) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

namespace {

// Recursive-descent JSON parser, same dialect discipline as the
// telemetry parser (obs/metrics_json.cc) but building a DOM: trace
// analysis needs to walk arbitrary `args` objects, not a fixed schema.
class DomParser {
 public:
  explicit DomParser(std::string_view text) : text_(text) {}

  Status Parse(JsonValue* out) {
    HEMATCH_RETURN_IF_ERROR(ParseValue(out, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON value");
    }
    return Status::OK();
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::ParseError("trace JSON, offset " + std::to_string(pos_) +
                              ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool TryConsume(char ch) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ch) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char ch) {
    if (!TryConsume(ch)) {
      return Error(std::string("expected '") + ch + "'");
    }
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    HEMATCH_RETURN_IF_ERROR(Expect('"'));
    out->clear();
    while (pos_ < text_.size()) {
      const char ch = text_[pos_++];
      if (ch == '"') {
        return Status::OK();
      }
      if (ch != '\\') {
        out->push_back(ch);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          const auto [ptr, ec] = std::from_chars(
              text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
          if (ec != std::errc() || ptr != text_.data() + pos_ + 4) {
            return Error("bad \\u escape");
          }
          pos_ += 4;
          if (code > 0x7f) {
            return Error("non-ASCII \\u escape unsupported");
          }
          out->push_back(static_cast<char>(code));
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Error("nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    const char ch = text_[pos_];
    if (ch == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->text);
    }
    if (ch == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      bool first = true;
      while (true) {
        if (TryConsume('}')) {
          return Status::OK();
        }
        if (!first) {
          HEMATCH_RETURN_IF_ERROR(Expect(','));
        }
        first = false;
        SkipWhitespace();
        std::string key;
        HEMATCH_RETURN_IF_ERROR(ParseString(&key));
        HEMATCH_RETURN_IF_ERROR(Expect(':'));
        JsonValue value;
        HEMATCH_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
        out->fields.emplace_back(std::move(key), std::move(value));
      }
    }
    if (ch == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      bool first = true;
      while (true) {
        if (TryConsume(']')) {
          return Status::OK();
        }
        if (!first) {
          HEMATCH_RETURN_IF_ERROR(Expect(','));
        }
        first = false;
        JsonValue value;
        HEMATCH_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
        out->items.push_back(std::move(value));
      }
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return Status::OK();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return Status::OK();
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      out->kind = JsonValue::Kind::kNull;
      return Status::OK();
    }
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    double number = 0.0;
    const auto [ptr, ec] = std::from_chars(begin, end, number);
    if (ec != std::errc() || ptr == begin) {
      return Error("expected a value");
    }
    pos_ += static_cast<std::size_t>(ptr - begin);
    out->kind = JsonValue::Kind::kNumber;
    out->number = number;
    return Status::OK();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void DecodeArgs(const JsonValue* args, TraceEvent* event) {
  if (args == nullptr || args->kind != JsonValue::Kind::kObject) {
    return;
  }
  for (const auto& [key, value] : args->fields) {
    if (value.kind != JsonValue::Kind::kNumber) {
      continue;
    }
    if (key == "span_id") {
      event->id = static_cast<SpanId>(value.number);
    } else if (key == "parent_id") {
      event->parent = static_cast<SpanId>(value.number);
    } else if (key == "value") {
      event->value = value.number;
    } else {
      event->args.push_back({key, value.number});
    }
  }
}

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  JsonValue value;
  DomParser parser(text);
  HEMATCH_RETURN_IF_ERROR(parser.Parse(&value));
  return value;
}

Result<ParsedTrace> ParseChromeTrace(std::string_view json) {
  JsonValue root;
  {
    auto parsed = ParseJson(json);
    HEMATCH_RETURN_IF_ERROR(parsed.status());
    root = std::move(parsed).value();
  }

  const JsonValue* events = nullptr;
  ParsedTrace trace;
  if (root.kind == JsonValue::Kind::kArray) {
    events = &root;
  } else if (root.kind == JsonValue::Kind::kObject) {
    events = root.Find("traceEvents");
    if (const JsonValue* other = root.Find("otherData")) {
      if (const JsonValue* dropped = other->Find("dropped_events")) {
        trace.dropped_events =
            static_cast<std::uint64_t>(dropped->NumberOr(0.0));
      }
    }
  }
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    return Status::ParseError("trace JSON: no traceEvents array");
  }

  static const std::string kEmpty;
  for (const JsonValue& entry : events->items) {
    if (entry.kind != JsonValue::Kind::kObject) {
      return Status::ParseError("trace JSON: event is not an object");
    }
    const JsonValue* ph = entry.Find("ph");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString) {
      continue;
    }
    const std::uint32_t tid = static_cast<std::uint32_t>(
        entry.Find("tid") ? entry.Find("tid")->NumberOr(0.0) : 0.0);
    const std::string& name =
        entry.Find("name") ? entry.Find("name")->TextOr(kEmpty) : kEmpty;

    if (ph->text == "M") {
      if (name == "thread_name") {
        if (const JsonValue* args = entry.Find("args")) {
          if (const JsonValue* tname = args->Find("name")) {
            trace.thread_names[tid] = tname->TextOr(kEmpty);
          }
        }
      }
      continue;
    }

    TraceEvent event;
    event.name = name;
    event.tid = tid;
    if (const JsonValue* cat = entry.Find("cat")) {
      event.category = cat->TextOr(kEmpty);
    }
    if (const JsonValue* ts = entry.Find("ts")) {
      event.ts_us = ts->NumberOr(0.0);
    }
    if (ph->text == "X") {
      event.kind = TraceEventKind::kSpan;
      if (const JsonValue* dur = entry.Find("dur")) {
        event.dur_us = dur->NumberOr(0.0);
      }
    } else if (ph->text == "i" || ph->text == "I") {
      event.kind = TraceEventKind::kInstant;
    } else if (ph->text == "C") {
      event.kind = TraceEventKind::kCounter;
    } else {
      continue;  // Unknown phase: tolerated, not modeled.
    }
    DecodeArgs(entry.Find("args"), &event);
    trace.events.push_back(std::move(event));
  }
  return trace;
}

TraceReport AnalyzeTrace(const ParsedTrace& trace) {
  TraceReport report;
  report.dropped_events = trace.dropped_events;

  std::vector<const TraceEvent*> spans;
  double min_ts = 0.0;
  double max_end = 0.0;
  bool any = false;
  for (const TraceEvent& event : trace.events) {
    const double end =
        event.ts_us + (event.kind == TraceEventKind::kSpan ? event.dur_us : 0);
    if (!any || event.ts_us < min_ts) {
      min_ts = event.ts_us;
    }
    if (!any || end > max_end) {
      max_end = end;
    }
    any = true;
    switch (event.kind) {
      case TraceEventKind::kSpan:
        ++report.span_count;
        spans.push_back(&event);
        break;
      case TraceEventKind::kInstant:
        ++report.instant_count;
        break;
      case TraceEventKind::kCounter:
        ++report.counter_count;
        break;
    }
  }
  report.wall_us = any ? max_end - min_ts : 0.0;

  // Child time per parent span id; self = dur - child time (clamped:
  // concurrent children, e.g. strategy threads under the run root, can
  // sum past their parent's own duration).
  std::unordered_map<SpanId, double> child_time;
  std::unordered_map<SpanId, const TraceEvent*> by_id;
  std::unordered_map<SpanId, std::vector<const TraceEvent*>> children;
  for (const TraceEvent* span : spans) {
    if (span->id != 0) {
      by_id.emplace(span->id, span);
    }
  }
  for (const TraceEvent* span : spans) {
    if (span->parent != 0 && by_id.count(span->parent) > 0) {
      child_time[span->parent] += span->dur_us;
      children[span->parent].push_back(span);
    }
  }

  std::map<std::string, SpanNameStats> by_name;
  for (const TraceEvent* span : spans) {
    SpanNameStats& stats = by_name[span->name];
    stats.name = span->name;
    ++stats.count;
    stats.total_us += span->dur_us;
    double self = span->dur_us;
    auto it = child_time.find(span->id);
    if (it != child_time.end()) {
      self = std::max(0.0, self - it->second);
    }
    stats.self_us += self;
    stats.max_us = std::max(stats.max_us, span->dur_us);
  }
  for (auto& [name, stats] : by_name) {
    report.by_name.push_back(std::move(stats));
  }
  std::sort(report.by_name.begin(), report.by_name.end(),
            [](const SpanNameStats& a, const SpanNameStats& b) {
              return a.self_us > b.self_us;
            });

  // Critical path: longest root, then repeatedly the child that
  // finishes last (with abandoned stragglers a child can outlive its
  // parent; "finishes last" still names the chain that held up the
  // run).
  const TraceEvent* root = nullptr;
  for (const TraceEvent* span : spans) {
    const bool is_root = span->parent == 0 || by_id.count(span->parent) == 0;
    if (is_root && (root == nullptr || span->dur_us > root->dur_us)) {
      root = span;
    }
  }
  const TraceEvent* cursor = root;
  while (cursor != nullptr) {
    report.critical_path.push_back({cursor->name, cursor->id, cursor->tid,
                                    cursor->ts_us, cursor->dur_us});
    const TraceEvent* next = nullptr;
    auto it = children.find(cursor->id);
    if (it != children.end()) {
      for (const TraceEvent* child : it->second) {
        if (next == nullptr ||
            child->ts_us + child->dur_us > next->ts_us + next->dur_us) {
          next = child;
        }
      }
    }
    cursor = next;
    if (report.critical_path.size() > spans.size()) {
      break;  // Defensive: a cyclic parent link in a foreign trace.
    }
  }

  // Per-thread busy time: union of span intervals, so nesting is not
  // double-counted.
  std::map<std::uint32_t, std::vector<std::pair<double, double>>> intervals;
  std::map<std::uint32_t, std::uint64_t> span_counts;
  for (const TraceEvent* span : spans) {
    intervals[span->tid].emplace_back(span->ts_us,
                                      span->ts_us + span->dur_us);
    ++span_counts[span->tid];
  }
  for (auto& [tid, ranges] : intervals) {
    std::sort(ranges.begin(), ranges.end());
    double busy = 0.0;
    double open_start = 0.0;
    double open_end = -1.0;
    for (const auto& [start, end] : ranges) {
      if (start > open_end) {
        busy += std::max(0.0, open_end - open_start);
        open_start = start;
        open_end = end;
      } else {
        open_end = std::max(open_end, end);
      }
    }
    busy += std::max(0.0, open_end - open_start);
    ThreadUtilization util;
    util.tid = tid;
    auto name_it = trace.thread_names.find(tid);
    if (name_it != trace.thread_names.end()) {
      util.name = name_it->second;
    }
    util.spans = span_counts[tid];
    util.busy_us = busy;
    util.utilization = report.wall_us > 0.0 ? busy / report.wall_us : 0.0;
    report.threads.push_back(std::move(util));
  }
  return report;
}

namespace {

std::string FormatRow(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

}  // namespace

std::string FormatTraceReport(const TraceReport& report, std::size_t top_n) {
  std::string out;
  out += FormatRow(
      "trace: %llu spans, %llu instants, %llu counter samples, wall %.3f ms",
      static_cast<unsigned long long>(report.span_count),
      static_cast<unsigned long long>(report.instant_count),
      static_cast<unsigned long long>(report.counter_count),
      report.wall_us / 1000.0);
  if (report.dropped_events > 0) {
    out += FormatRow(" (%llu events dropped)",
                     static_cast<unsigned long long>(report.dropped_events));
  }
  out += "\n\nhottest spans (by self time):\n";
  out += FormatRow("  %10s %10s %6s %10s  %s\n", "self_ms", "total_ms",
                   "count", "max_ms", "name");
  std::size_t shown = 0;
  for (const SpanNameStats& stats : report.by_name) {
    if (shown++ >= top_n) {
      out += FormatRow("  ... %zu more span names\n",
                       report.by_name.size() - top_n);
      break;
    }
    out += FormatRow("  %10.3f %10.3f %6llu %10.3f  %s\n",
                     stats.self_us / 1000.0, stats.total_us / 1000.0,
                     static_cast<unsigned long long>(stats.count),
                     stats.max_us / 1000.0, stats.name.c_str());
  }

  out += "\ncritical path (root -> leaf):\n";
  out += FormatRow("  %10s %10s %4s  %s\n", "start_ms", "dur_ms", "tid",
                   "name");
  for (const CriticalPathStep& step : report.critical_path) {
    out += FormatRow("  %10.3f %10.3f %4u  %s\n", step.start_us / 1000.0,
                     step.dur_us / 1000.0, step.tid, step.name.c_str());
  }

  out += "\nthread utilization:\n";
  out += FormatRow("  %4s %6s %10s %6s  %s\n", "tid", "spans", "busy_ms",
                   "util", "name");
  for (const ThreadUtilization& util : report.threads) {
    out += FormatRow("  %4u %6llu %10.3f %5.1f%%  %s\n", util.tid,
                     static_cast<unsigned long long>(util.spans),
                     util.busy_us / 1000.0, util.utilization * 100.0,
                     util.name.c_str());
  }
  return out;
}

ParsedTrace FilterTraceByRequest(const ParsedTrace& trace,
                                 std::uint64_t request_id) {
  // Seed: spans whose args tag them with this request id.
  std::unordered_map<SpanId, bool> keep;  // span id -> kept
  const double want = static_cast<double>(request_id);
  for (const TraceEvent& event : trace.events) {
    if (event.kind != TraceEventKind::kSpan) {
      continue;
    }
    for (const TraceArg& arg : event.args) {
      if (arg.key == "request_id" && arg.value == want) {
        keep[event.id] = true;
        break;
      }
    }
  }

  // Expand to transitive descendants. Parent ids are assigned before
  // child ids but events are stored per thread, so a single pass in
  // file order can miss cross-thread chains — iterate to fixpoint.
  bool grew = !keep.empty();
  while (grew) {
    grew = false;
    for (const TraceEvent& event : trace.events) {
      if (event.kind != TraceEventKind::kSpan || keep.count(event.id) != 0) {
        continue;
      }
      if (event.parent != 0 && keep.count(event.parent) != 0) {
        keep[event.id] = true;
        grew = true;
      }
    }
  }

  ParsedTrace filtered;
  filtered.dropped_events = trace.dropped_events;
  for (const TraceEvent& event : trace.events) {
    if (event.kind == TraceEventKind::kSpan) {
      if (keep.count(event.id) != 0) {
        filtered.events.push_back(event);
      }
      continue;
    }
    // Instants/counters carry no span id; attribute them to the
    // request when they fall inside a kept span's interval on the same
    // thread (how `freq.scan` markers land inside matcher spans).
    for (const TraceEvent& span : trace.events) {
      if (span.kind != TraceEventKind::kSpan || keep.count(span.id) == 0 ||
          span.tid != event.tid) {
        continue;
      }
      if (event.ts_us >= span.ts_us &&
          event.ts_us <= span.ts_us + span.dur_us) {
        filtered.events.push_back(event);
        break;
      }
    }
  }
  for (const TraceEvent& event : filtered.events) {
    auto name = trace.thread_names.find(event.tid);
    if (name != trace.thread_names.end()) {
      filtered.thread_names.emplace(name->first, name->second);
    }
  }
  return filtered;
}

std::string FormatSpanTree(const ParsedTrace& trace) {
  std::vector<const TraceEvent*> spans;
  for (const TraceEvent& event : trace.events) {
    if (event.kind == TraceEventKind::kSpan) {
      spans.push_back(&event);
    }
  }
  if (spans.empty()) {
    return "(no spans)\n";
  }
  std::sort(spans.begin(), spans.end(),
            [](const TraceEvent* a, const TraceEvent* b) {
              if (a->ts_us != b->ts_us) {
                return a->ts_us < b->ts_us;
              }
              return a->id < b->id;
            });
  const double origin = spans.front()->ts_us;

  std::unordered_map<SpanId, std::vector<const TraceEvent*>> children;
  std::unordered_map<SpanId, const TraceEvent*> by_id;
  for (const TraceEvent* span : spans) {
    by_id.emplace(span->id, span);
  }
  std::vector<const TraceEvent*> roots;
  for (const TraceEvent* span : spans) {  // Sorted, so sibling lists are too.
    if (span->parent != 0 && by_id.count(span->parent) != 0) {
      children[span->parent].push_back(span);
    } else {
      roots.push_back(span);  // True root, or parent filtered away.
    }
  }

  std::string out;
  // Iterative DFS; a stack of (span, depth) with children pushed in
  // reverse start order so they pop earliest-first.
  std::vector<std::pair<const TraceEvent*, int>> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.emplace_back(*it, 0);
  }
  while (!stack.empty()) {
    const auto [span, depth] = stack.back();
    stack.pop_back();
    out += FormatRow("%10.3f ms %+10.3f ms  ", (span->ts_us - origin) / 1000.0,
                     span->dur_us / 1000.0);
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
    out += span->name;
    for (const TraceArg& arg : span->args) {
      out += FormatRow("  %s=%g", arg.key.c_str(), arg.value);
    }
    auto name = trace.thread_names.find(span->tid);
    if (name != trace.thread_names.end()) {
      out += FormatRow("  [%s]", name->second.c_str());
    } else {
      out += FormatRow("  [tid %u]", span->tid);
    }
    out += '\n';
    auto kids = children.find(span->id);
    if (kids != children.end()) {
      for (auto it = kids->second.rbegin(); it != kids->second.rend(); ++it) {
        stack.emplace_back(*it, depth + 1);
      }
    }
  }
  return out;
}

}  // namespace hematch::obs
