#ifndef HEMATCH_OBS_METRICS_H_
#define HEMATCH_OBS_METRICS_H_

// Header-only metric primitives. The hot path is "resolve a handle once,
// bump a 64-bit cell per event": matchers and evaluators obtain
// Counter*/Gauge*/Histogram* from a `MetricsRegistry` at setup time and
// touch only plain members afterwards — no locks, no lookups, no
// allocation. A disabled registry hands out shared sink cells and
// registers nothing, so instrumented code needs no `if (enabled)` guards
// and a disabled run allocates no metric storage at all.

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace hematch::obs {

/// A monotonically increasing 64-bit event count.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) { value_ += n; }
  /// Overwrites the count (used when promoting an externally maintained
  /// tally, e.g. `MatchResult::mappings_processed`, into the registry).
  void Set(std::uint64_t v) { value_ = v; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// A last-written-wins scalar (objective values, sizes, milliseconds).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void SetMax(double v) { value_ = std::max(value_, v); }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// A fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// first `bounds.size()` buckets; one overflow bucket catches the rest.
/// Bucket layout is fixed at registration, so `Observe` is a short linear
/// scan (bucket counts are small by design) with no allocation.
class Histogram {
 public:
  Histogram() : counts_(1, 0) {}  // No bounds: a single catch-all bucket.
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {}

  void Observe(double v) {
    std::size_t b = 0;
    while (b < bounds_.size() && v > bounds_[b]) {
      ++b;
    }
    ++counts_[b];
    sum_ += v;
  }

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t total_count() const {
    std::uint64_t total = 0;
    for (std::uint64_t c : counts_) {
      total += c;
    }
    return total;
  }
  double sum() const { return sum_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  double sum_ = 0.0;
};

/// Owns all metrics of one matching context (or one tool run). Metric
/// names are dot-separated paths, conventionally `<subsystem>.<metric>`
/// or `<method-slug>.<metric>` — see docs/OBSERVABILITY.md for the
/// taxonomy. Lookup is by sorted map so exports are deterministic;
/// pointers returned by the accessors stay valid for the registry's
/// lifetime (node-based map storage).
///
/// Not thread-safe; one registry per worker, merge snapshots to combine.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const { return enabled_; }

  /// Finds or registers the named metric. On a disabled registry these
  /// return shared sink cells and register nothing.
  Counter* GetCounter(std::string_view name) {
    if (!enabled_) {
      return &sink_counter_;
    }
    return &counters_.try_emplace(std::string(name)).first->second;
  }
  Gauge* GetGauge(std::string_view name) {
    if (!enabled_) {
      return &sink_gauge_;
    }
    return &gauges_.try_emplace(std::string(name)).first->second;
  }
  Histogram* GetHistogram(std::string_view name,
                          std::vector<double> bounds = {}) {
    if (!enabled_) {
      return &sink_histogram_;
    }
    auto [it, inserted] =
        histograms_.try_emplace(std::string(name), std::move(bounds));
    return &it->second;
  }

  std::size_t num_metrics() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Zeroes every registered value, keeping registrations (and therefore
  /// previously handed-out pointers) intact.
  void Reset() {
    for (auto& [name, c] : counters_) {
      c.Set(0);
    }
    for (auto& [name, g] : gauges_) {
      g.Set(0.0);
    }
    for (auto& [name, h] : histograms_) {
      h = Histogram(h.bounds());
    }
  }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  bool enabled_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  // Shared write targets for the disabled mode.
  Counter sink_counter_;
  Gauge sink_gauge_;
  Histogram sink_histogram_;
};

/// Canonical metric-name prefix for a human-readable method name:
/// lowercase, every non-alphanumeric run collapsed to one '_'
/// ("Pattern-Tight" -> "pattern_tight", "Vertex+Edge" -> "vertex_edge").
inline std::string MetricSlug(std::string_view name) {
  std::string slug;
  slug.reserve(name.size());
  for (char ch : name) {
    const bool alnum = (ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9');
    const bool upper = ch >= 'A' && ch <= 'Z';
    if (upper) {
      slug.push_back(static_cast<char>(ch - 'A' + 'a'));
    } else if (alnum) {
      slug.push_back(ch);
    } else if (!slug.empty() && slug.back() != '_') {
      slug.push_back('_');
    }
  }
  while (!slug.empty() && slug.back() == '_') {
    slug.pop_back();
  }
  return slug;
}

}  // namespace hematch::obs

#endif  // HEMATCH_OBS_METRICS_H_
