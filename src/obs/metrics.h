#ifndef HEMATCH_OBS_METRICS_H_
#define HEMATCH_OBS_METRICS_H_

// Header-only metric primitives. The hot path is "resolve a handle once,
// bump a 64-bit cell per event": matchers and evaluators obtain
// Counter*/Gauge*/Histogram* from a `MetricsRegistry` at setup time and
// touch only plain members afterwards — no lookups, no allocation. A
// disabled registry hands out shared sink cells and registers nothing,
// so instrumented code needs no `if (enabled)` guards and a disabled run
// allocates no metric storage at all.
//
// All primitives are safe for concurrent writers (the portfolio runner
// races several matchers over one registry): counters and gauges are
// relaxed atomics, histograms use per-bucket atomic cells, and metric
// registration/visitation is serialized by a registry mutex. Handles
// stay plain pointers — node-based map storage keeps them valid for the
// registry's lifetime, including across concurrent registrations.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hematch::obs {

/// A monotonically increasing 64-bit event count. Concurrent increments
/// never lose updates (relaxed atomic adds).
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Overwrites the count (used when promoting an externally maintained
  /// tally, e.g. `MatchResult::mappings_processed`, into the registry).
  void Set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A last-written-wins scalar (objective values, sizes, milliseconds).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void SetMax(double v) {
    double current = value_.load(std::memory_order_relaxed);
    while (v > current &&
           !value_.compare_exchange_weak(current, v,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// first `bounds.size()` buckets; one overflow bucket catches the rest.
/// Bucket layout is fixed at registration, so `Observe` is a short linear
/// scan (bucket counts are small by design) with no allocation; bucket
/// cells and the running sum are atomics, so concurrent observers never
/// lose counts.
class Histogram {
 public:
  Histogram() : counts_(1) {}  // No bounds: a single catch-all bucket.
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {}

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v) {
    std::size_t b = 0;
    while (b < bounds_.size() && v > bounds_[b]) {
      ++b;
    }
    counts_[b].fetch_add(1, std::memory_order_relaxed);
    // C++20 atomic<double>::fetch_add: a single RMW instead of the old
    // CAS retry loop, which degraded under heavy multi-writer load
    // (portfolio workers observing into one histogram).
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  const std::vector<double>& bounds() const { return bounds_; }
  /// Copies the bucket cells out (atomic loads); the vector layout is
  /// `bounds().size() + 1` entries, overflow last.
  std::vector<std::uint64_t> counts() const {
    std::vector<std::uint64_t> out;
    out.reserve(counts_.size());
    for (const auto& c : counts_) {
      out.push_back(c.load(std::memory_order_relaxed));
    }
    return out;
  }
  std::uint64_t total_count() const {
    std::uint64_t total = 0;
    for (const auto& c : counts_) {
      total += c.load(std::memory_order_relaxed);
    }
    return total;
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Zeroes every bucket and the sum; bounds are kept.
  void Reset() {
    for (auto& c : counts_) {
      c.store(0, std::memory_order_relaxed);
    }
    sum_.store(0.0, std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<double> sum_{0.0};
};

/// Owns all metrics of one matching context (or one tool run). Metric
/// names are dot-separated paths, conventionally `<subsystem>.<metric>`
/// or `<method-slug>.<metric>` — see docs/OBSERVABILITY.md for the
/// taxonomy. Lookup is by sorted map so exports are deterministic;
/// pointers returned by the accessors stay valid for the registry's
/// lifetime (node-based map storage).
///
/// Thread-safe: registration and visitation take an internal mutex, and
/// the handed-out cells are themselves atomic, so concurrent workers
/// (see exec/portfolio.h) may resolve and bump metrics freely. Merge
/// snapshots to combine registries across processes.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const { return enabled_; }

  /// Finds or registers the named metric. On a disabled registry these
  /// return shared sink cells and register nothing.
  Counter* GetCounter(std::string_view name) {
    if (!enabled_) {
      return &sink_counter_;
    }
    std::lock_guard<std::mutex> lock(mu_);
    return &counters_.try_emplace(std::string(name)).first->second;
  }
  Gauge* GetGauge(std::string_view name) {
    if (!enabled_) {
      return &sink_gauge_;
    }
    std::lock_guard<std::mutex> lock(mu_);
    return &gauges_.try_emplace(std::string(name)).first->second;
  }
  Histogram* GetHistogram(std::string_view name,
                          std::vector<double> bounds = {}) {
    if (!enabled_) {
      return &sink_histogram_;
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] =
        histograms_.try_emplace(std::string(name), std::move(bounds));
    return &it->second;
  }

  std::size_t num_metrics() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Zeroes every registered value, keeping registrations (and therefore
  /// previously handed-out pointers) intact.
  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, c] : counters_) {
      c.Set(0);
    }
    for (auto& [name, g] : gauges_) {
      g.Set(0.0);
    }
    for (auto& [name, h] : histograms_) {
      h.Reset();
    }
  }

  /// Visits every registered metric of one kind, in name order, under
  /// the registration lock — safe against concurrent `Get*` calls. This
  /// is how snapshots are captured (see obs/telemetry.h); do not call
  /// `Get*` on the same registry from inside the visitor (deadlock).
  template <typename Fn>  // Fn(const std::string&, const Counter&)
  void ForEachCounter(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) {
      fn(name, c);
    }
  }
  template <typename Fn>  // Fn(const std::string&, const Gauge&)
  void ForEachGauge(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, g] : gauges_) {
      fn(name, g);
    }
  }
  template <typename Fn>  // Fn(const std::string&, const Histogram&)
  void ForEachHistogram(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, h] : histograms_) {
      fn(name, h);
    }
  }

 private:
  bool enabled_;
  mutable std::mutex mu_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  // Shared write targets for the disabled mode (atomic, so concurrent
  // disabled-mode workers scribble on them benignly).
  Counter sink_counter_;
  Gauge sink_gauge_;
  Histogram sink_histogram_;
};

/// Canonical metric-name prefix for a human-readable method name:
/// lowercase, every non-alphanumeric run collapsed to one '_'
/// ("Pattern-Tight" -> "pattern_tight", "Vertex+Edge" -> "vertex_edge").
inline std::string MetricSlug(std::string_view name) {
  std::string slug;
  slug.reserve(name.size());
  for (char ch : name) {
    const bool alnum = (ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9');
    const bool upper = ch >= 'A' && ch <= 'Z';
    if (upper) {
      slug.push_back(static_cast<char>(ch - 'A' + 'a'));
    } else if (alnum) {
      slug.push_back(ch);
    } else if (!slug.empty() && slug.back() != '_') {
      slug.push_back('_');
    }
  }
  while (!slug.empty() && slug.back() == '_') {
    slug.pop_back();
  }
  return slug;
}

}  // namespace hematch::obs

#endif  // HEMATCH_OBS_METRICS_H_
