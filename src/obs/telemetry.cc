#include "obs/telemetry.h"

#include <algorithm>

namespace hematch::obs {

bool operator==(const HistogramSnapshot& a, const HistogramSnapshot& b) {
  return a.bounds == b.bounds && a.counts == b.counts && a.sum == b.sum;
}

double HistogramSnapshot::Percentile(double q) const {
  const std::uint64_t total = total_count();
  if (total == 0) {
    return 0.0;
  }
  if (bounds.empty() || counts.size() != bounds.size() + 1) {
    return sum / static_cast<double>(total);  // No buckets to interpolate.
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) {
      continue;
    }
    const std::uint64_t next = cumulative + counts[b];
    if (static_cast<double>(next) >= target) {
      if (b == bounds.size()) {
        return bounds.back();  // Overflow bucket: clamp to the last edge.
      }
      const double lower = b == 0 ? std::min(0.0, bounds[0]) : bounds[b - 1];
      const double upper = bounds[b];
      const double into_bucket =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(counts[b]);
      return lower + (upper - lower) * std::clamp(into_bucket, 0.0, 1.0);
    }
    cumulative = next;
  }
  return bounds.back();
}

std::uint64_t TelemetrySnapshot::counter(const std::string& name,
                                         std::uint64_t fallback) const {
  auto it = counters.find(name);
  return it == counters.end() ? fallback : it->second;
}

double TelemetrySnapshot::gauge(const std::string& name,
                                double fallback) const {
  auto it = gauges.find(name);
  return it == gauges.end() ? fallback : it->second;
}

void TelemetrySnapshot::Merge(const TelemetrySnapshot& other,
                              const std::string& prefix) {
  for (const auto& [name, value] : other.counters) {
    counters[prefix + name] += value;
  }
  for (const auto& [name, value] : other.gauges) {
    gauges[prefix + name] = value;
  }
  for (const auto& [name, h] : other.histograms) {
    auto [it, inserted] = histograms.try_emplace(prefix + name, h);
    if (inserted) {
      continue;
    }
    HistogramSnapshot& mine = it->second;
    if (mine.bounds != h.bounds || mine.counts.size() != h.counts.size()) {
      mine = h;  // Incompatible layouts: last writer wins.
      continue;
    }
    for (std::size_t b = 0; b < mine.counts.size(); ++b) {
      mine.counts[b] += h.counts[b];
    }
    mine.sum += h.sum;
  }
}

bool operator==(const TelemetrySnapshot& a, const TelemetrySnapshot& b) {
  return a.counters == b.counters && a.gauges == b.gauges &&
         a.histograms == b.histograms;
}

TelemetrySnapshot CaptureSnapshot(const MetricsRegistry& registry) {
  TelemetrySnapshot snapshot;
  // Visitation holds the registry's registration lock, so a snapshot is
  // consistent against concurrent metric registration; individual cell
  // reads are atomic (a racing worker's in-flight bump lands in the next
  // snapshot).
  registry.ForEachCounter([&](const std::string& name, const Counter& c) {
    snapshot.counters.emplace(name, c.value());
  });
  registry.ForEachGauge([&](const std::string& name, const Gauge& g) {
    snapshot.gauges.emplace(name, g.value());
  });
  registry.ForEachHistogram(
      [&](const std::string& name, const Histogram& histogram) {
        HistogramSnapshot h;
        h.bounds = histogram.bounds();
        h.counts = histogram.counts();
        h.sum = histogram.sum();
        snapshot.histograms.emplace(name, std::move(h));
      });
  return snapshot;
}

TelemetrySnapshot DiffSnapshots(const TelemetrySnapshot& before,
                                const TelemetrySnapshot& after) {
  TelemetrySnapshot diff;
  for (const auto& [name, value] : after.counters) {
    const std::uint64_t base = before.counter(name);
    diff.counters.emplace(name, value >= base ? value - base : 0);
  }
  diff.gauges = after.gauges;
  for (const auto& [name, h] : after.histograms) {
    HistogramSnapshot d = h;
    auto it = before.histograms.find(name);
    if (it != before.histograms.end() && it->second.bounds == h.bounds &&
        it->second.counts.size() == h.counts.size()) {
      for (std::size_t b = 0; b < d.counts.size(); ++b) {
        const std::uint64_t base = it->second.counts[b];
        d.counts[b] = d.counts[b] >= base ? d.counts[b] - base : 0;
      }
      d.sum = std::max(0.0, d.sum - it->second.sum);
    }
    diff.histograms.emplace(name, std::move(d));
  }
  return diff;
}

}  // namespace hematch::obs
