#include "obs/logfile.h"

#include <cstdio>
#include <filesystem>
#include <system_error>

namespace hematch::obs {

RotatingLineFile::RotatingLineFile(std::string path, std::int64_t max_bytes)
    : path_(std::move(path)), max_bytes_(max_bytes) {
  std::error_code ec;
  const auto existing = std::filesystem::file_size(path_, ec);
  if (!ec) {
    bytes_ = static_cast<std::int64_t>(existing);
  }
  out_.open(path_, std::ios::app);
}

bool RotatingLineFile::ok() const { return out_.is_open(); }

Status RotatingLineFile::RotateLocked() {
  out_.close();
  // rename() replaces an existing target atomically on POSIX, so the
  // previous `.1` generation is dropped in the same step.
  if (std::rename(path_.c_str(), rotated_path().c_str()) != 0) {
    return Status::Internal("log rotation failed for " + path_);
  }
  out_.open(path_, std::ios::trunc);
  bytes_ = 0;
  if (!out_) {
    return Status::Internal("cannot reopen log file " + path_);
  }
  return Status::OK();
}

Status RotatingLineFile::WriteLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!out_.is_open()) {
    return Status::InvalidArgument("log file not open: " + path_);
  }
  const std::int64_t incoming = static_cast<std::int64_t>(line.size()) + 1;
  if (max_bytes_ > 0 && bytes_ > 0 && bytes_ + incoming > max_bytes_) {
    HEMATCH_RETURN_IF_ERROR(RotateLocked());
  }
  out_ << line << '\n';
  out_.flush();
  if (!out_) {
    return Status::Internal("failed writing log file " + path_);
  }
  bytes_ += incoming;
  return Status::OK();
}

}  // namespace hematch::obs
