#include "obs/window.h"

#include <algorithm>

namespace hematch::obs {

namespace {

std::int64_t SliceIndexFor(std::chrono::steady_clock::time_point start,
                           double slice_ms,
                           std::chrono::steady_clock::time_point now) {
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(now - start).count();
  if (elapsed_ms <= 0.0) {
    return 0;
  }
  return static_cast<std::int64_t>(elapsed_ms / slice_ms);
}

}  // namespace

WindowedCounter::WindowedCounter(WindowOptions options, TimePoint start)
    : options_(options), start_(start) {
  options_.slices = std::max(1, options_.slices);
  options_.window_ms = std::max(1.0, options_.window_ms);
  slice_ms_ = options_.window_ms / options_.slices;
  slices_.assign(static_cast<std::size_t>(options_.slices), 0);
}

void WindowedCounter::RotateLocked(TimePoint now) const {
  const std::int64_t target = SliceIndexFor(start_, slice_ms_, now);
  if (target <= current_index_) {
    return;  // Same slice, or a clock observed out of order: no-op.
  }
  const std::int64_t steps =
      std::min<std::int64_t>(target - current_index_, options_.slices);
  for (std::int64_t s = 1; s <= steps; ++s) {
    slices_[static_cast<std::size_t>((current_index_ + s) % options_.slices)] =
        0;
  }
  current_index_ = target;
}

void WindowedCounter::Add(std::uint64_t n, TimePoint now) {
  std::lock_guard<std::mutex> lock(mu_);
  RotateLocked(now);
  slices_[static_cast<std::size_t>(current_index_ % options_.slices)] += n;
}

std::uint64_t WindowedCounter::WindowTotal(TimePoint now) const {
  std::lock_guard<std::mutex> lock(mu_);
  RotateLocked(now);
  std::uint64_t total = 0;
  for (std::uint64_t v : slices_) {
    total += v;
  }
  return total;
}

double WindowedCounter::WindowRatePerSec(TimePoint now) const {
  return static_cast<double>(WindowTotal(now)) /
         (options_.window_ms / 1000.0);
}

WindowedHistogram::WindowedHistogram(std::vector<double> bounds,
                                     WindowOptions options, TimePoint start)
    : bounds_(std::move(bounds)), options_(options), start_(start) {
  options_.slices = std::max(1, options_.slices);
  options_.window_ms = std::max(1.0, options_.window_ms);
  slice_ms_ = options_.window_ms / options_.slices;
  slices_.resize(static_cast<std::size_t>(options_.slices));
  for (Slice& slice : slices_) {
    slice.counts.assign(bounds_.size() + 1, 0);
  }
}

void WindowedHistogram::RotateLocked(TimePoint now) const {
  const std::int64_t target = SliceIndexFor(start_, slice_ms_, now);
  if (target <= current_index_) {
    return;
  }
  const std::int64_t steps =
      std::min<std::int64_t>(target - current_index_, options_.slices);
  for (std::int64_t s = 1; s <= steps; ++s) {
    Slice& slice = slices_[static_cast<std::size_t>((current_index_ + s) %
                                                    options_.slices)];
    std::fill(slice.counts.begin(), slice.counts.end(), 0);
    slice.sum = 0.0;
  }
  current_index_ = target;
}

void WindowedHistogram::Observe(double v, TimePoint now) {
  std::lock_guard<std::mutex> lock(mu_);
  RotateLocked(now);
  Slice& slice =
      slices_[static_cast<std::size_t>(current_index_ % options_.slices)];
  std::size_t b = 0;
  while (b < bounds_.size() && v > bounds_[b]) {
    ++b;
  }
  ++slice.counts[b];
  slice.sum += v;
}

HistogramSnapshot WindowedHistogram::WindowSnapshot(TimePoint now) const {
  std::lock_guard<std::mutex> lock(mu_);
  RotateLocked(now);
  HistogramSnapshot out;
  out.bounds = bounds_;
  out.counts.assign(bounds_.size() + 1, 0);
  for (const Slice& slice : slices_) {
    for (std::size_t b = 0; b < slice.counts.size(); ++b) {
      out.counts[b] += slice.counts[b];
    }
    out.sum += slice.sum;
  }
  return out;
}

}  // namespace hematch::obs
