#ifndef HEMATCH_OBS_LOGFILE_H_
#define HEMATCH_OBS_LOGFILE_H_

/// \file
/// A size-rotated line-oriented log file for JSONL streams (access logs,
/// heartbeats). One active file at `path`; when appending a line would
/// push it past `max_bytes`, the current file is renamed to `path.1`
/// (replacing any previous `path.1`) and a fresh file is started. Two
/// generations bound disk usage at ~2x `max_bytes` without a cleaner
/// thread.
///
/// Thread-safe: writes serialize on an internal mutex and each line is
/// appended with a single flush, so concurrent writers never interleave
/// within a line.

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

#include "common/result.h"

namespace hematch::obs {

class RotatingLineFile {
 public:
  /// Opens (appending) `path`. `max_bytes <= 0` disables rotation.
  RotatingLineFile(std::string path, std::int64_t max_bytes);

  RotatingLineFile(const RotatingLineFile&) = delete;
  RotatingLineFile& operator=(const RotatingLineFile&) = delete;

  /// True when the file opened successfully.
  bool ok() const;

  /// Appends `line` plus a trailing newline, rotating first if the
  /// write would exceed `max_bytes`.
  Status WriteLine(const std::string& line);

  const std::string& path() const { return path_; }

  /// The rotated-generation path (`path.1`).
  std::string rotated_path() const { return path_ + ".1"; }

 private:
  Status RotateLocked();

  std::string path_;
  std::int64_t max_bytes_;
  std::mutex mu_;
  std::ofstream out_;
  std::int64_t bytes_ = 0;
};

}  // namespace hematch::obs

#endif  // HEMATCH_OBS_LOGFILE_H_
