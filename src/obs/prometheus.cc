#include "obs/prometheus.h"

#include <cstdint>

#include "obs/metrics_json.h"

namespace hematch::obs {

namespace {

bool IsNameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool IsNameChar(char c) { return IsNameStartChar(c) || (c >= '0' && c <= '9'); }

void AppendSample(std::string& out, const std::string& name,
                  const std::string& labels, const std::string& value) {
  out += name;
  out += labels;
  out += ' ';
  out += value;
  out += '\n';
}

void EmitCounter(std::string& out, const std::string& name,
                 std::uint64_t value) {
  out += "# TYPE " + name + "_total counter\n";
  AppendSample(out, name + "_total", "", std::to_string(value));
}

void EmitGauge(std::string& out, const std::string& name, double value) {
  out += "# TYPE " + name + " gauge\n";
  AppendSample(out, name, "", JsonNumber(value));
}

void EmitHistogram(std::string& out, const std::string& name,
                   const HistogramSnapshot& h) {
  out += "# TYPE " + name + " histogram\n";
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < h.bounds.size(); ++b) {
    if (b < h.counts.size()) {
      cumulative += h.counts[b];
    }
    AppendSample(out, name + "_bucket",
                 "{le=\"" + JsonNumber(h.bounds[b]) + "\"}",
                 std::to_string(cumulative));
  }
  if (h.bounds.size() < h.counts.size()) {
    for (std::size_t b = h.bounds.size(); b < h.counts.size(); ++b) {
      cumulative += h.counts[b];
    }
  }
  AppendSample(out, name + "_bucket", "{le=\"+Inf\"}",
               std::to_string(cumulative));
  AppendSample(out, name + "_sum", "", JsonNumber(h.sum));
  AppendSample(out, name + "_count", "", std::to_string(cumulative));
}

void EmitSnapshot(std::string& out, const TelemetrySnapshot& snapshot,
                  const std::string& suffix, bool percentile_gauges) {
  for (const auto& [name, value] : snapshot.counters) {
    EmitCounter(out, PrometheusMetricName(name + suffix), value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    EmitGauge(out, PrometheusMetricName(name + suffix), value);
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string base = PrometheusMetricName(name + suffix);
    EmitHistogram(out, base, h);
    if (percentile_gauges) {
      EmitGauge(out, base + "_p50", h.Percentile(0.50));
      EmitGauge(out, base + "_p95", h.Percentile(0.95));
      EmitGauge(out, base + "_p99", h.Percentile(0.99));
    }
  }
}

}  // namespace

std::string PrometheusMetricName(const std::string& name) {
  std::string out = "hematch_";
  for (char c : name) {
    out += IsNameChar(c) ? c : '_';
  }
  return out;
}

std::string TelemetryToPrometheusText(const TelemetrySnapshot& cumulative,
                                      const TelemetrySnapshot* windowed) {
  std::string out;
  EmitSnapshot(out, cumulative, "", /*percentile_gauges=*/false);
  if (windowed != nullptr) {
    EmitSnapshot(out, *windowed, "_w60", /*percentile_gauges=*/true);
  }
  return out;
}

}  // namespace hematch::obs
