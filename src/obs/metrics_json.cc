#include "obs/metrics_json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <system_error>

namespace hematch::obs {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char ch : text) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) {
    return "0";
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) {
    return "0";
  }
  return std::string(buf, ptr);
}

namespace {

class JsonBuilder {
 public:
  JsonBuilder(int indent, int depth) : indent_(indent), depth_(depth) {}

  void OpenObject() {
    out_ += '{';
    ++depth_;
  }
  void CloseObject(bool had_entries) {
    --depth_;
    if (had_entries) {
      NewLine();
    }
    out_ += '}';
  }
  void Key(std::string_view name, bool first) {
    if (!first) {
      out_ += ',';
    }
    NewLine();
    out_ += '"';
    out_ += JsonEscape(name);
    out_ += "\": ";
  }
  void Raw(std::string_view text) { out_ += text; }

  std::string Take() { return std::move(out_); }

 private:
  void NewLine() {
    out_ += '\n';
    out_.append(static_cast<std::size_t>(indent_ * depth_), ' ');
  }

  std::string out_;
  int indent_;
  int depth_;
};

template <typename Range, typename Fn>
void EmitArray(JsonBuilder& b, const Range& range, Fn&& fn) {
  b.Raw("[");
  bool first = true;
  for (const auto& item : range) {
    if (!first) {
      b.Raw(", ");
    }
    first = false;
    b.Raw(fn(item));
  }
  b.Raw("]");
}

}  // namespace

std::string TelemetryToJson(const TelemetrySnapshot& snapshot, int indent,
                            int depth) {
  JsonBuilder b(indent, depth);
  b.OpenObject();
  b.Key("schema", /*first=*/true);
  b.Raw("\"hematch.telemetry.v1\"");

  b.Key("counters", /*first=*/false);
  b.OpenObject();
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    b.Key(name, first);
    first = false;
    b.Raw(std::to_string(value));
  }
  b.CloseObject(!snapshot.counters.empty());

  b.Key("gauges", /*first=*/false);
  b.OpenObject();
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    b.Key(name, first);
    first = false;
    b.Raw(JsonNumber(value));
  }
  b.CloseObject(!snapshot.gauges.empty());

  b.Key("histograms", /*first=*/false);
  b.OpenObject();
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    b.Key(name, first);
    first = false;
    b.OpenObject();
    b.Key("bounds", /*first=*/true);
    EmitArray(b, h.bounds, [](double v) { return JsonNumber(v); });
    b.Key("counts", /*first=*/false);
    EmitArray(b, h.counts,
              [](std::uint64_t v) { return std::to_string(v); });
    b.Key("sum", /*first=*/false);
    b.Raw(JsonNumber(h.sum));
    // Derived percentile views; the parser skips them (unknown fields),
    // so round-tripping reconstructs them from the buckets instead.
    b.Key("p50", /*first=*/false);
    b.Raw(JsonNumber(h.Percentile(0.50)));
    b.Key("p95", /*first=*/false);
    b.Raw(JsonNumber(h.Percentile(0.95)));
    b.Key("p99", /*first=*/false);
    b.Raw(JsonNumber(h.Percentile(0.99)));
    b.CloseObject(/*had_entries=*/true);
  }
  b.CloseObject(!snapshot.histograms.empty());

  b.CloseObject(/*had_entries=*/true);
  return b.Take();
}

namespace {

// Minimal recursive-descent parser for the exporter's dialect of JSON:
// objects, arrays, strings (with the escapes JsonEscape emits), numbers,
// and the three literals. Depth-limited; no trailing commas.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Status Parse(TelemetrySnapshot* out) {
    HEMATCH_RETURN_IF_ERROR(Expect('{'));
    bool first = true;
    while (true) {
      SkipWhitespace();
      if (TryConsume('}')) {
        break;
      }
      if (!first) {
        HEMATCH_RETURN_IF_ERROR(Expect(','));
      }
      first = false;
      std::string key;
      HEMATCH_RETURN_IF_ERROR(ParseString(&key));
      HEMATCH_RETURN_IF_ERROR(Expect(':'));
      if (key == "counters") {
        HEMATCH_RETURN_IF_ERROR(ParseCounterMap(&out->counters));
      } else if (key == "gauges") {
        HEMATCH_RETURN_IF_ERROR(ParseGaugeMap(&out->gauges));
      } else if (key == "histograms") {
        HEMATCH_RETURN_IF_ERROR(ParseHistogramMap(&out->histograms));
      } else {
        HEMATCH_RETURN_IF_ERROR(SkipValue(0));
      }
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after telemetry object");
    }
    return Status::OK();
  }

 private:
  Status Error(const std::string& what) const {
    return Status::ParseError("telemetry JSON, offset " +
                              std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool TryConsume(char ch) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ch) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char ch) {
    if (!TryConsume(ch)) {
      return Error(std::string("expected '") + ch + "'");
    }
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    HEMATCH_RETURN_IF_ERROR(Expect('"'));
    out->clear();
    while (pos_ < text_.size()) {
      const char ch = text_[pos_++];
      if (ch == '"') {
        return Status::OK();
      }
      if (ch != '\\') {
        out->push_back(ch);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          const auto [ptr, ec] = std::from_chars(
              text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
          if (ec != std::errc() || ptr != text_.data() + pos_ + 4) {
            return Error("bad \\u escape");
          }
          pos_ += 4;
          if (code > 0x7f) {
            return Error("non-ASCII \\u escape unsupported");
          }
          out->push_back(static_cast<char>(code));
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseDouble(double* out) {
    SkipWhitespace();
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    const auto [ptr, ec] = std::from_chars(begin, end, *out);
    if (ec != std::errc() || ptr == begin) {
      return Error("expected a number");
    }
    pos_ += static_cast<std::size_t>(ptr - begin);
    return Status::OK();
  }

  Status ParseUint(std::uint64_t* out) {
    SkipWhitespace();
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    const auto [ptr, ec] = std::from_chars(begin, end, *out);
    if (ec != std::errc() || ptr == begin) {
      return Error("expected a non-negative integer");
    }
    pos_ += static_cast<std::size_t>(ptr - begin);
    return Status::OK();
  }

  Status ParseCounterMap(std::map<std::string, std::uint64_t>* out) {
    return ParseFlatMap([this, out](std::string key) {
      std::uint64_t value = 0;
      HEMATCH_RETURN_IF_ERROR(ParseUint(&value));
      (*out)[std::move(key)] = value;
      return Status::OK();
    });
  }

  Status ParseGaugeMap(std::map<std::string, double>* out) {
    return ParseFlatMap([this, out](std::string key) {
      double value = 0.0;
      HEMATCH_RETURN_IF_ERROR(ParseDouble(&value));
      (*out)[std::move(key)] = value;
      return Status::OK();
    });
  }

  Status ParseHistogramMap(std::map<std::string, HistogramSnapshot>* out) {
    return ParseFlatMap([this, out](std::string key) {
      HistogramSnapshot h;
      HEMATCH_RETURN_IF_ERROR(Expect('{'));
      bool first = true;
      while (true) {
        SkipWhitespace();
        if (TryConsume('}')) {
          break;
        }
        if (!first) {
          HEMATCH_RETURN_IF_ERROR(Expect(','));
        }
        first = false;
        std::string field;
        HEMATCH_RETURN_IF_ERROR(ParseString(&field));
        HEMATCH_RETURN_IF_ERROR(Expect(':'));
        if (field == "bounds") {
          HEMATCH_RETURN_IF_ERROR(ParseArray([this, &h] {
            double v = 0.0;
            HEMATCH_RETURN_IF_ERROR(ParseDouble(&v));
            h.bounds.push_back(v);
            return Status::OK();
          }));
        } else if (field == "counts") {
          HEMATCH_RETURN_IF_ERROR(ParseArray([this, &h] {
            std::uint64_t v = 0;
            HEMATCH_RETURN_IF_ERROR(ParseUint(&v));
            h.counts.push_back(v);
            return Status::OK();
          }));
        } else if (field == "sum") {
          HEMATCH_RETURN_IF_ERROR(ParseDouble(&h.sum));
        } else {
          HEMATCH_RETURN_IF_ERROR(SkipValue(0));
        }
      }
      if (h.counts.size() != h.bounds.size() + 1) {
        return Error("histogram '" + key + "' needs bounds.size()+1 counts");
      }
      (*out)[std::move(key)] = std::move(h);
      return Status::OK();
    });
  }

  template <typename EntryFn>
  Status ParseFlatMap(EntryFn&& entry) {
    HEMATCH_RETURN_IF_ERROR(Expect('{'));
    bool first = true;
    while (true) {
      SkipWhitespace();
      if (TryConsume('}')) {
        return Status::OK();
      }
      if (!first) {
        HEMATCH_RETURN_IF_ERROR(Expect(','));
      }
      first = false;
      std::string key;
      HEMATCH_RETURN_IF_ERROR(ParseString(&key));
      HEMATCH_RETURN_IF_ERROR(Expect(':'));
      HEMATCH_RETURN_IF_ERROR(entry(std::move(key)));
    }
  }

  template <typename ElementFn>
  Status ParseArray(ElementFn&& element) {
    HEMATCH_RETURN_IF_ERROR(Expect('['));
    bool first = true;
    while (true) {
      SkipWhitespace();
      if (TryConsume(']')) {
        return Status::OK();
      }
      if (!first) {
        HEMATCH_RETURN_IF_ERROR(Expect(','));
      }
      first = false;
      HEMATCH_RETURN_IF_ERROR(element());
    }
  }

  // Skips any well-formed value (used for ignored keys).
  Status SkipValue(int depth) {
    if (depth > 32) {
      return Error("nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    const char ch = text_[pos_];
    if (ch == '"') {
      std::string ignored;
      return ParseString(&ignored);
    }
    if (ch == '{') {
      return ParseFlatMap(
          [this, depth](std::string) { return SkipValue(depth + 1); });
    }
    if (ch == '[') {
      return ParseArray([this, depth] { return SkipValue(depth + 1); });
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return Status::OK();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return Status::OK();
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return Status::OK();
    }
    double ignored = 0.0;
    return ParseDouble(&ignored);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<TelemetrySnapshot> TelemetryFromJson(std::string_view json) {
  TelemetrySnapshot snapshot;
  JsonParser parser(json);
  HEMATCH_RETURN_IF_ERROR(parser.Parse(&snapshot));
  return snapshot;
}

std::string TelemetryToHeartbeatLine(const TelemetrySnapshot& snapshot,
                                     std::uint64_t seq, double elapsed_ms,
                                     const TelemetrySnapshot* windowed) {
  std::string out;
  out += "{\"schema\":\"hematch.heartbeat.v1\",\"seq\":" +
         std::to_string(seq) + ",\"elapsed_ms\":" + JsonNumber(elapsed_ms);
  out += ",\"counters\":{";
  bool first = true;
  auto emit_counters = [&](const TelemetrySnapshot& s,
                           const std::string& suffix) {
    for (const auto& [name, value] : s.counters) {
      if (!first) {
        out += ',';
      }
      first = false;
      out += '"' + JsonEscape(name + suffix) + "\":" + std::to_string(value);
    }
  };
  emit_counters(snapshot, "");
  if (windowed != nullptr) {
    emit_counters(*windowed, "_w60");
  }
  out += "},\"gauges\":{";
  first = true;
  auto emit_gauges = [&](const TelemetrySnapshot& s,
                         const std::string& suffix) {
    for (const auto& [name, value] : s.gauges) {
      if (!first) {
        out += ',';
      }
      first = false;
      out += '"' + JsonEscape(name + suffix) + "\":" + JsonNumber(value);
    }
  };
  emit_gauges(snapshot, "");
  if (windowed != nullptr) {
    emit_gauges(*windowed, "_w60");
  }
  out += "},\"percentiles\":{";
  first = true;
  auto emit_percentiles = [&](const TelemetrySnapshot& s,
                              const std::string& suffix) {
    for (const auto& [name, h] : s.histograms) {
      if (!first) {
        out += ',';
      }
      first = false;
      out += '"' + JsonEscape(name + suffix) + "\":{\"count\":" +
             std::to_string(h.total_count()) +
             ",\"p50\":" + JsonNumber(h.Percentile(0.50)) +
             ",\"p95\":" + JsonNumber(h.Percentile(0.95)) +
             ",\"p99\":" + JsonNumber(h.Percentile(0.99)) + '}';
    }
  };
  emit_percentiles(snapshot, "");
  if (windowed != nullptr) {
    emit_percentiles(*windowed, "_w60");
  }
  out += "}}";
  return out;
}

Status WriteTelemetryJson(const TelemetrySnapshot& snapshot,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open metrics file: " + path);
  }
  out << TelemetryToJson(snapshot) << "\n";
  if (!out) {
    return Status::Internal("failed writing metrics file: " + path);
  }
  return Status::OK();
}

}  // namespace hematch::obs
