#include "obs/search_tracer.h"

#include <iomanip>

namespace hematch::obs {

void SearchTracer::OnComplete(const SearchProgress& /*progress*/) {}

CallbackTracer::CallbackTracer(ProgressCallback callback, std::uint64_t every)
    : callback_(std::move(callback)), every_(every == 0 ? 1 : every) {}

void CallbackTracer::OnProgress(const SearchProgress& progress) {
  if (callback_ && progress.epoch % every_ == 0) {
    callback_(progress);
  }
}

void CallbackTracer::OnComplete(const SearchProgress& progress) {
  if (callback_) {
    callback_(progress);
  }
}

StreamProgressTracer::StreamProgressTracer(std::ostream& out) : out_(&out) {}

namespace {

void PrintLine(std::ostream& out, const SearchProgress& p, bool final) {
  out << (final ? "[done]     " : "[progress] ") << p.method << " epoch "
      << p.epoch << ": depth " << p.depth << "/" << p.max_depth << ", nodes "
      << p.nodes_visited << ", mappings " << p.mappings_processed;
  if (p.open_list_size > 0) {
    out << ", open " << p.open_list_size;
  }
  out << std::fixed << std::setprecision(3) << ", f " << p.best_f << ", gap "
      << p.bound_gap << ", pruned " << p.existence_prune_hits << ", "
      << std::setprecision(1) << p.elapsed_ms << " ms\n";
  out.unsetf(std::ios_base::floatfield);
}

}  // namespace

void StreamProgressTracer::OnProgress(const SearchProgress& progress) {
  PrintLine(*out_, progress, /*final=*/false);
}

void StreamProgressTracer::OnComplete(const SearchProgress& progress) {
  PrintLine(*out_, progress, /*final=*/true);
}

void RecordingTracer::OnProgress(const SearchProgress& progress) {
  samples_.push_back(progress);
}

void RecordingTracer::OnComplete(const SearchProgress& progress) {
  completions_.push_back(progress);
}

}  // namespace hematch::obs
