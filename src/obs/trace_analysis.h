#ifndef HEMATCH_OBS_TRACE_ANALYSIS_H_
#define HEMATCH_OBS_TRACE_ANALYSIS_H_

/// \file
/// Reads back the Chrome trace-event JSON that `TraceRecorder` emits and
/// turns it into a profile: self/total time per span name, the critical
/// path from the run root, and per-thread utilization. Shared by the
/// `hematch_trace` CLI tool and the round-trip tests, so "parse what we
/// emit" is enforced in CI rather than promised in a comment.
///
/// The parser accepts the general trace-event dialect (an object with a
/// `traceEvents` array, or a bare array of events), not just our own
/// writer's output, so traces lightly edited by other tools still load.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "obs/trace.h"

namespace hematch::obs {

/// Generic JSON value — just enough DOM for trace files and heartbeat
/// lines. Object fields preserve document order.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;                          ///< kArray.
  std::vector<std::pair<std::string, JsonValue>> fields; ///< kObject.

  /// Field lookup on an object; null when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
  double NumberOr(double fallback) const {
    return kind == Kind::kNumber ? number : fallback;
  }
  const std::string& TextOr(const std::string& fallback) const {
    return kind == Kind::kString ? text : fallback;
  }
};

/// Parses one JSON document (strict commas, no comments).
Result<JsonValue> ParseJson(std::string_view text);

/// A trace file decoded back into recorder events.
struct ParsedTrace {
  std::vector<TraceEvent> events;  ///< Spans, instants, counters.
  std::map<std::uint32_t, std::string> thread_names;
  std::uint64_t dropped_events = 0;
};

/// Decodes Chrome trace-event JSON ("X"/"i"/"C" events plus
/// `thread_name` metadata). Unknown phases are skipped.
Result<ParsedTrace> ParseChromeTrace(std::string_view json);

/// Aggregate timing for one span name.
struct SpanNameStats {
  std::string name;
  std::uint64_t count = 0;
  double total_us = 0.0;  ///< Sum of span durations.
  double self_us = 0.0;   ///< Total minus time in child spans.
  double max_us = 0.0;    ///< Longest single span.
};

/// One hop of the critical path, root first.
struct CriticalPathStep {
  std::string name;
  SpanId id = 0;
  std::uint32_t tid = 0;
  double start_us = 0.0;
  double dur_us = 0.0;
};

/// Busy time per thread (union of its span intervals, so nested spans
/// are not double-counted).
struct ThreadUtilization {
  std::uint32_t tid = 0;
  std::string name;
  std::uint64_t spans = 0;
  double busy_us = 0.0;
  double utilization = 0.0;  ///< busy_us / trace wall time.
};

/// The full profile for one trace.
struct TraceReport {
  double wall_us = 0.0;  ///< First event start to last span end.
  std::vector<SpanNameStats> by_name;  ///< Sorted by self time, descending.
  std::vector<CriticalPathStep> critical_path;
  std::vector<ThreadUtilization> threads;
  std::uint64_t span_count = 0;
  std::uint64_t instant_count = 0;
  std::uint64_t counter_count = 0;
  std::uint64_t dropped_events = 0;
};

/// Computes the profile. Critical path: starting from the longest root
/// span, repeatedly descend into the child span that finishes last —
/// the chain that bounded this run's wall-clock.
TraceReport AnalyzeTrace(const ParsedTrace& trace);

/// Human-readable rendering (the `hematch_trace` output): hottest spans
/// by self time (top `top_n`), the critical path, and thread
/// utilization.
std::string FormatTraceReport(const TraceReport& report,
                              std::size_t top_n = 15);

/// Keeps the spans belonging to one served request: every span carrying
/// a `request_id` arg equal to `request_id`, plus all their transitive
/// descendants (via parent links), plus instants/counters that fall
/// inside any kept span's interval on the same thread. Thread names and
/// the dropped-event count carry over. An id nobody carries yields an
/// empty event list — callers should treat that as "request not in this
/// trace".
ParsedTrace FilterTraceByRequest(const ParsedTrace& trace,
                                 std::uint64_t request_id);

/// Renders the request's spans as an indented tree (children under
/// parents, siblings in start order), one line per span with start
/// offset and duration — the drill-down view for
/// `hematch_trace --request`. Orphaned spans (parent outside the
/// filtered set) root the tree alongside true roots.
std::string FormatSpanTree(const ParsedTrace& trace);

}  // namespace hematch::obs

#endif  // HEMATCH_OBS_TRACE_ANALYSIS_H_
