#ifndef HEMATCH_OBS_PROMETHEUS_H_
#define HEMATCH_OBS_PROMETHEUS_H_

/// \file
/// Prometheus text exposition (format 0.0.4) of telemetry snapshots, so
/// standard scrapers can pull serve metrics without a sidecar.
///
/// Mapping:
///   - metric names are sanitized to `[a-zA-Z_:][a-zA-Z0-9_:]*` (dots and
///     other punctuation become underscores) and prefixed `hematch_`;
///   - counters render as `# TYPE ... counter` with a `_total` suffix;
///   - gauges render as `# TYPE ... gauge`;
///   - histograms render the full cumulative bucket series
///     (`_bucket{le="..."}` ascending, a final `le="+Inf"` bucket equal
///     to `_count`, plus `_sum` and `_count`).
///
/// When a windowed snapshot is supplied its series get a `_w60` infix
/// (before any `_total`/`_bucket` suffix), and each windowed histogram
/// additionally exports interpolated `_w60_p50/_p95/_p99` gauges so
/// trailing-window percentiles are scrapeable directly.

#include <string>

#include "obs/telemetry.h"

namespace hematch::obs {

/// Sanitizes `name` into the Prometheus metric-name charset and applies
/// the `hematch_` prefix. Exposed for tests.
std::string PrometheusMetricName(const std::string& name);

/// Renders `cumulative` (and optionally `windowed`) as Prometheus text
/// exposition. The result ends with a newline and is safe to serve as
/// `text/plain; version=0.0.4`.
std::string TelemetryToPrometheusText(const TelemetrySnapshot& cumulative,
                                      const TelemetrySnapshot* windowed =
                                          nullptr);

}  // namespace hematch::obs

#endif  // HEMATCH_OBS_PROMETHEUS_H_
