#ifndef HEMATCH_OBS_STOPWATCH_H_
#define HEMATCH_OBS_STOPWATCH_H_

// Wall-clock helpers backing every `MatchResult::elapsed_ms` in the
// library, so the CLI, the benches, and the pipeline all measure the same
// way (steady clock, milliseconds as double).

#include <chrono>

#include "obs/metrics.h"

namespace hematch::obs {

/// Millisecond wall-clock stopwatch on the steady clock.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Writes the elapsed milliseconds into a double and/or metric cells when
/// the scope exits. The output pointers must outlive the timer; any of
/// them may be null.
class ScopedTimerMs {
 public:
  explicit ScopedTimerMs(double* out, Gauge* gauge = nullptr,
                         Histogram* histogram = nullptr)
      : out_(out), gauge_(gauge), histogram_(histogram) {}

  ScopedTimerMs(const ScopedTimerMs&) = delete;
  ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;

  ~ScopedTimerMs() {
    const double ms = watch_.ElapsedMs();
    if (out_ != nullptr) {
      *out_ = ms;
    }
    if (gauge_ != nullptr) {
      gauge_->Set(ms);
    }
    if (histogram_ != nullptr) {
      histogram_->Observe(ms);
    }
  }

  double ElapsedMs() const { return watch_.ElapsedMs(); }

 private:
  Stopwatch watch_;
  double* out_;
  Gauge* gauge_;
  Histogram* histogram_;
};

}  // namespace hematch::obs

#endif  // HEMATCH_OBS_STOPWATCH_H_
