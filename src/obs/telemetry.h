#ifndef HEMATCH_OBS_TELEMETRY_H_
#define HEMATCH_OBS_TELEMETRY_H_

// Passive, value-type view of a `MetricsRegistry` at one instant.
// Snapshots are what crosses API boundaries (`MatchPipelineOutcome`,
// `RunRecord`) and what the JSON exporter serializes; registries stay
// private to the context that owns them.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace hematch::obs {

/// Frozen histogram state.
struct HistogramSnapshot {
  std::vector<double> bounds;          ///< Inclusive upper bucket edges.
  std::vector<std::uint64_t> counts;   ///< bounds.size() + 1 buckets.
  double sum = 0.0;
  std::uint64_t total_count() const {
    std::uint64_t total = 0;
    for (std::uint64_t c : counts) {
      total += c;
    }
    return total;
  }

  /// Interpolated quantile estimate, `q` in [0, 1]. Assumes values are
  /// uniform within each bucket (Prometheus-style linear interpolation
  /// between the bucket's edges; the first bucket interpolates up from
  /// min(0, its upper edge)). A quantile landing in the overflow bucket
  /// clamps to the last bound — the histogram has no upper edge there.
  /// An empty histogram (or one with no bounds) returns the mean.
  double Percentile(double q) const;
};

bool operator==(const HistogramSnapshot& a, const HistogramSnapshot& b);

/// All metric values at one instant, keyed by metric name.
struct TelemetrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Counter value, or `fallback` when the counter is absent.
  std::uint64_t counter(const std::string& name,
                        std::uint64_t fallback = 0) const;

  /// Gauge value, or `fallback` when the gauge is absent.
  double gauge(const std::string& name, double fallback = 0.0) const;

  /// Folds `other` into this snapshot: counters and histogram buckets
  /// add, gauges take `other`'s value. Every key from `other` is inserted
  /// with `prefix` prepended.
  void Merge(const TelemetrySnapshot& other, const std::string& prefix = "");
};

bool operator==(const TelemetrySnapshot& a, const TelemetrySnapshot& b);

/// Captures the current values of every registered metric. A disabled
/// registry yields an empty snapshot.
TelemetrySnapshot CaptureSnapshot(const MetricsRegistry& registry);

/// What happened between two snapshots of the same registry: counters and
/// histogram buckets subtract (clamped at zero), gauges take `after`'s
/// value. Keys only present in `after` are kept as-is — this is how the
/// evaluation runner attributes shared-context metrics to a single run.
TelemetrySnapshot DiffSnapshots(const TelemetrySnapshot& before,
                                const TelemetrySnapshot& after);

}  // namespace hematch::obs

#endif  // HEMATCH_OBS_TELEMETRY_H_
