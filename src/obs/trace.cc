#include "obs/trace.h"

#include <algorithm>
#include <fstream>
#include <utility>

#include "obs/metrics_json.h"

namespace hematch::obs {

namespace {

// Thread-local recorder plumbing. Entries are tagged with the owning
// recorder's generation (globally unique per recorder instance), so a
// cached pointer can never be mistaken for state of a newer recorder
// that happens to reuse the same address.
struct SpanStackEntry {
  std::uint64_t generation = 0;
  SpanId id = 0;
};

struct TlsState {
  std::uint64_t buffer_generation = 0;
  void* buffer = nullptr;  // TraceRecorder::ThreadBuffer*
  std::vector<SpanStackEntry> span_stack;
  TraceRecorder* ambient = nullptr;
};

TlsState& Tls() {
  thread_local TlsState state;
  return state;
}

std::atomic<std::uint64_t> g_recorder_generation{1};

}  // namespace

// Per-thread bounded ring. Each writer locks only its own buffer, so
// recording never contends across threads; the snapshot path takes the
// same lock briefly per buffer, which keeps export safe even while
// abandoned portfolio stragglers are still recording.
struct TraceRecorder::ThreadBuffer {
  explicit ThreadBuffer(std::uint32_t thread_index, std::size_t capacity)
      : tid(thread_index), capacity(capacity) {}

  void Push(TraceEvent event) {
    std::lock_guard<std::mutex> lock(mu);
    if (ring.size() < capacity) {
      ring.push_back(std::move(event));
      return;
    }
    ring[head] = std::move(event);
    head = (head + 1) % capacity;
    ++dropped;
  }

  mutable std::mutex mu;
  const std::uint32_t tid;
  const std::size_t capacity;
  std::string thread_name;
  std::vector<TraceEvent> ring;
  std::size_t head = 0;  ///< Oldest entry once the ring wrapped.
  std::uint64_t dropped = 0;
};

TraceRecorder::TraceRecorder(TraceRecorderOptions options)
    : capacity_(options.per_thread_capacity > 0 ? options.per_thread_capacity
                                                : 1),
      generation_(g_recorder_generation.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() = default;

double TraceRecorder::NowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  TlsState& tls = Tls();
  if (tls.buffer_generation == generation_) {
    return static_cast<ThreadBuffer*>(tls.buffer);
  }
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<ThreadBuffer>(
      static_cast<std::uint32_t>(buffers_.size()), capacity_));
  ThreadBuffer* buffer = buffers_.back().get();
  tls.buffer_generation = generation_;
  tls.buffer = buffer;
  return buffer;
}

void TraceRecorder::PushEvent(TraceEvent event) {
  ThreadBuffer* buffer = BufferForThisThread();
  event.tid = buffer->tid;
  buffer->Push(std::move(event));
}

SpanId TraceRecorder::ResolveParent(SpanId requested) const {
  if (requested != kAutoParent) {
    return requested;
  }
  const auto& stack = Tls().span_stack;
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->generation == generation_) {
      return it->id;
    }
  }
  return 0;
}

SpanId TraceRecorder::CurrentSpan() const { return ResolveParent(kAutoParent); }

void TraceRecorder::RecordSpan(std::string name, std::string category,
                               SpanId id, SpanId parent, double ts_us,
                               double dur_us, std::vector<TraceArg> args) {
  TraceEvent event;
  event.kind = TraceEventKind::kSpan;
  event.name = std::move(name);
  event.category = std::move(category);
  event.id = id;
  event.parent = parent;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.args = std::move(args);
  PushEvent(std::move(event));
}

void TraceRecorder::RecordInstant(std::string name, std::string category,
                                  std::vector<TraceArg> args, SpanId parent) {
  TraceEvent event;
  event.kind = TraceEventKind::kInstant;
  event.name = std::move(name);
  event.category = std::move(category);
  event.parent = ResolveParent(parent);
  event.ts_us = NowUs();
  event.args = std::move(args);
  PushEvent(std::move(event));
}

void TraceRecorder::RecordCounter(std::string name, double value) {
  TraceEvent event;
  event.kind = TraceEventKind::kCounter;
  event.name = std::move(name);
  event.ts_us = NowUs();
  event.value = value;
  PushEvent(std::move(event));
}

void TraceRecorder::SetThreadName(std::string name) {
  ThreadBuffer* buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->thread_name = std::move(name);
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      const std::size_t n = buffer->ring.size();
      const std::size_t start = n == buffer->capacity ? buffer->head : 0;
      for (std::size_t i = 0; i < n; ++i) {
        events.push_back(buffer->ring[(start + i) % n]);
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return events;
}

std::map<std::uint32_t, std::string> TraceRecorder::ThreadNames() const {
  std::map<std::uint32_t, std::string> names;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    if (!buffer->thread_name.empty()) {
      names.emplace(buffer->tid, buffer->thread_name);
    }
  }
  return names;
}

std::uint64_t TraceRecorder::dropped_events() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->dropped;
  }
  return total;
}

namespace {

void AppendArgs(std::string& out, const std::vector<TraceArg>& args) {
  for (const TraceArg& arg : args) {
    out += ",\"";
    out += JsonEscape(arg.key);
    out += "\":";
    out += JsonNumber(arg.value);
  }
}

void AppendEventPrefix(std::string& out, const TraceEvent& event,
                       const char* phase) {
  out += "{\"ph\":\"";
  out += phase;
  out += "\",\"pid\":1,\"tid\":";
  out += std::to_string(event.tid);
  out += ",\"name\":\"";
  out += JsonEscape(event.name);
  out += '"';
  if (!event.category.empty()) {
    out += ",\"cat\":\"";
    out += JsonEscape(event.category);
    out += '"';
  }
  out += ",\"ts\":";
  out += JsonNumber(event.ts_us);
}

}  // namespace

std::string TraceRecorder::ToChromeJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  const std::map<std::uint32_t, std::string> names = ThreadNames();

  std::string out;
  out.reserve(events.size() * 96 + 256);
  out += "{\n\"displayTimeUnit\": \"ms\",\n";
  out += "\"otherData\": {\"schema\": \"hematch.trace.v1\", ";
  out += "\"dropped_events\": " + std::to_string(dropped_events()) + "},\n";
  out += "\"traceEvents\": [\n";

  bool first = true;
  auto separator = [&] {
    if (!first) {
      out += ",\n";
    }
    first = false;
  };

  for (const auto& [tid, name] : names) {
    separator();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           JsonEscape(name) + "\"}}";
  }

  for (const TraceEvent& event : events) {
    separator();
    switch (event.kind) {
      case TraceEventKind::kSpan:
        AppendEventPrefix(out, event, "X");
        out += ",\"dur\":";
        out += JsonNumber(event.dur_us);
        out += ",\"args\":{\"span_id\":" + std::to_string(event.id) +
               ",\"parent_id\":" + std::to_string(event.parent);
        AppendArgs(out, event.args);
        out += "}}";
        break;
      case TraceEventKind::kInstant:
        AppendEventPrefix(out, event, "i");
        out += ",\"s\":\"t\",\"args\":{\"parent_id\":" +
               std::to_string(event.parent);
        AppendArgs(out, event.args);
        out += "}}";
        break;
      case TraceEventKind::kCounter:
        AppendEventPrefix(out, event, "C");
        out += ",\"args\":{\"value\":";
        out += JsonNumber(event.value);
        out += "}}";
        break;
    }
  }

  out += "\n]\n}\n";
  return out;
}

Status TraceRecorder::WriteChromeJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open trace file: " + path);
  }
  out << ToChromeJson();
  if (!out) {
    return Status::Internal("failed writing trace file: " + path);
  }
  return Status::OK();
}

ScopedSpan::ScopedSpan(TraceRecorder* recorder, std::string_view name,
                       std::string_view category, SpanId parent)
    : recorder_(recorder) {
  if (recorder_ == nullptr) {
    return;
  }
  id_ = recorder_->NextSpanId();
  parent_ = recorder_->ResolveParent(parent);
  start_us_ = recorder_->NowUs();
  name_.assign(name);
  category_.assign(category);
  Tls().span_stack.push_back({recorder_->generation_, id_});
}

ScopedSpan::~ScopedSpan() {
  if (recorder_ == nullptr) {
    return;
  }
  const double end_us = recorder_->NowUs();
  auto& stack = Tls().span_stack;
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->id == id_ && it->generation == recorder_->generation_) {
      stack.erase(std::next(it).base());
      break;
    }
  }
  recorder_->RecordSpan(std::move(name_), std::move(category_), id_, parent_,
                        start_us_, end_us - start_us_, std::move(args_));
}

void ScopedSpan::AddArg(std::string_view key, double value) {
  if (recorder_ == nullptr) {
    return;
  }
  args_.push_back({std::string(key), value});
}

void TraceInstant(TraceRecorder* recorder, std::string_view name,
                  std::string_view category, std::vector<TraceArg> args) {
  if (recorder == nullptr) {
    return;
  }
  recorder->RecordInstant(std::string(name), std::string(category),
                          std::move(args));
}

void TraceCounter(TraceRecorder* recorder, std::string_view name,
                  double value) {
  if (recorder == nullptr) {
    return;
  }
  recorder->RecordCounter(std::string(name), value);
}

TraceRecorder* AmbientTraceRecorder() { return Tls().ambient; }

AmbientTraceScope::AmbientTraceScope(TraceRecorder* recorder)
    : previous_(Tls().ambient) {
  Tls().ambient = recorder;
}

AmbientTraceScope::~AmbientTraceScope() { Tls().ambient = previous_; }

}  // namespace hematch::obs
