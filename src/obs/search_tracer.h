#ifndef HEMATCH_OBS_SEARCH_TRACER_H_
#define HEMATCH_OBS_SEARCH_TRACER_H_

// Live search tracing: matchers emit a `SearchProgress` sample every
// "epoch" (a fixed number of expansions for the A* search, one iteration
// for the heuristics) to an optional `SearchTracer` installed on the
// `MatchingContext`. A null tracer costs one pointer compare per epoch
// check; the structured counters in obs/metrics.h remain the durable
// record, the tracer is for progress bars, trajectory logging, and
// debugging long searches.

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace hematch::obs {

/// One progress sample of a running matcher.
struct SearchProgress {
  /// Method name as reported by `Matcher::name()`.
  std::string method;
  /// Ordinal of this sample within the run (0, 1, 2, ...).
  std::uint64_t epoch = 0;
  /// Search-tree nodes popped so far (A*; heuristics report iterations).
  std::uint64_t nodes_visited = 0;
  /// Candidate mappings processed so far (the paper's Fig. 7c x-axis).
  std::uint64_t mappings_processed = 0;
  /// Current size of the A* open list (0 for non-A* methods).
  std::size_t open_list_size = 0;
  /// Depth of the node driving this sample / heuristic iteration.
  std::size_t depth = 0;
  /// Full depth of a complete mapping (|V1|).
  std::size_t max_depth = 0;
  /// Best upper bound f = g + h currently at the top of the search.
  double best_f = 0.0;
  /// Best completed objective component seen so far (g of the deepest
  /// frontier for A*; current mapping objective for the heuristics).
  double best_g = 0.0;
  /// `best_f - best_g`: how much the bound still promises beyond what is
  /// already banked; shrinks toward 0 as the search converges.
  double bound_gap = 0.0;
  /// Existence-pruning (Proposition 3) hits so far, context-wide.
  std::uint64_t existence_prune_hits = 0;
  /// Wall-clock since the run started.
  double elapsed_ms = 0.0;
};

/// Receiver interface for progress samples.
class SearchTracer {
 public:
  virtual ~SearchTracer() = default;

  /// Called once per epoch while the search runs.
  virtual void OnProgress(const SearchProgress& progress) = 0;

  /// Called once when the run finishes (also after budget exhaustion,
  /// with the final partial tallies).
  virtual void OnComplete(const SearchProgress& progress);
};

/// Convenience alias for callback-style consumers.
using ProgressCallback = std::function<void(const SearchProgress&)>;

/// Adapts a `ProgressCallback` to the tracer interface, invoking it every
/// `every` samples (1 = every sample).
class CallbackTracer : public SearchTracer {
 public:
  explicit CallbackTracer(ProgressCallback callback, std::uint64_t every = 1);

  void OnProgress(const SearchProgress& progress) override;
  void OnComplete(const SearchProgress& progress) override;

 private:
  ProgressCallback callback_;
  std::uint64_t every_;
};

/// Prints one compact line per sample to a stream — the engine behind
/// `hematch_cli --progress`.
class StreamProgressTracer : public SearchTracer {
 public:
  explicit StreamProgressTracer(std::ostream& out);

  void OnProgress(const SearchProgress& progress) override;
  void OnComplete(const SearchProgress& progress) override;

 private:
  std::ostream* out_;
};

/// Buffers every sample; used by tests and trajectory analysis.
class RecordingTracer : public SearchTracer {
 public:
  void OnProgress(const SearchProgress& progress) override;
  void OnComplete(const SearchProgress& progress) override;

  const std::vector<SearchProgress>& samples() const { return samples_; }
  const std::vector<SearchProgress>& completions() const {
    return completions_;
  }

 private:
  std::vector<SearchProgress> samples_;
  std::vector<SearchProgress> completions_;
};

}  // namespace hematch::obs

#endif  // HEMATCH_OBS_SEARCH_TRACER_H_
