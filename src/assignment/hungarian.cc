#include "assignment/hungarian.h"

#include <limits>

#include "common/check.h"

namespace hematch {

AssignmentResult SolveMaxWeightAssignment(
    const std::vector<std::vector<double>>& weights) {
  const std::size_t n = weights.size();
  AssignmentResult result;
  if (n == 0) {
    return result;
  }
  for (const auto& row : weights) {
    HEMATCH_CHECK(row.size() == n, "weight matrix must be square");
  }

  // Classic O(n^3) shortest-augmenting-path formulation with potentials,
  // on the *minimization* of negated weights. Indices are 1-based with a
  // virtual row/column 0, the standard trick that keeps the inner loop
  // branch-free.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  auto cost = [&](std::size_t i, std::size_t j) { return -weights[i][j]; };

  std::vector<double> u(n + 1, 0.0);   // Row potentials.
  std::vector<double> v(n + 1, 0.0);   // Column potentials.
  std::vector<std::size_t> match(n + 1, 0);  // match[j] = row matched to j.
  std::vector<std::size_t> way(n + 1, 0);    // Back-pointers on columns.

  for (std::size_t i = 1; i <= n; ++i) {
    match[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = match[j0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) {
          continue;
        }
        const double reduced = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (reduced < minv[j]) {
          minv[j] = reduced;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[match[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (match[j0] != 0);
    // Unwind the augmenting path.
    do {
      const std::size_t j1 = way[j0];
      match[j0] = match[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  result.assignment.assign(n, 0);
  for (std::size_t j = 1; j <= n; ++j) {
    result.assignment[match[j] - 1] = j - 1;
  }
  for (std::size_t i = 0; i < n; ++i) {
    result.total_weight += weights[i][result.assignment[i]];
  }
  return result;
}

}  // namespace hematch
