#ifndef HEMATCH_ASSIGNMENT_HUNGARIAN_H_
#define HEMATCH_ASSIGNMENT_HUNGARIAN_H_

#include <cstddef>
#include <vector>

namespace hematch {

/// Result of a maximum-weight perfect assignment.
struct AssignmentResult {
  /// `assignment[row]` = the column matched to `row`.
  std::vector<std::size_t> assignment;
  /// Sum of the selected weights.
  double total_weight = 0.0;
};

/// Solves the maximum-weight perfect assignment problem on a square weight
/// matrix in O(n^3) using the Kuhn-Munkres (Hungarian) algorithm with
/// potentials [Kuhn 1955; the paper's reference 12].
///
/// `weights[i][j]` is the gain of assigning row `i` to column `j`; the
/// matrix must be square (rectangular problems are handled by the caller
/// padding with zero-weight dummy rows/columns, exactly as the paper adds
/// "artificial events" to equalize |V1| and |V2|).
///
/// Used by the Vertex, Iterative, and Entropy baselines, as the reference
/// implementation in tests for Proposition 6 (the advanced heuristic is
/// optimal for vertex patterns), and by anything needing a one-shot
/// bipartite assignment.
AssignmentResult SolveMaxWeightAssignment(
    const std::vector<std::vector<double>>& weights);

}  // namespace hematch

#endif  // HEMATCH_ASSIGNMENT_HUNGARIAN_H_
