// Cross-hospital pathway alignment: two emergency departments log the
// same clinical pathway under different coding systems. This example
// runs the full user workflow on the hospital workload:
//
//   1. match the event vocabularies (exact pattern matcher),
//   2. audit the result with the evidence report (weakest pairs first),
//   3. probe for split steps with the 1-to-n extension,
//   4. export the reviewed mapping in the interchange format.
//
//   ./build/examples/cross_hospital

#include <iostream>
#include <sstream>

#include "core/astar_matcher.h"
#include "core/mapping_io.h"
#include "core/one_to_n.h"
#include "core/pattern_set.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "gen/hospital_process.h"
#include "graph/dependency_graph.h"

int main() {
  using namespace hematch;

  HospitalProcessOptions options;
  options.num_traces = 3000;
  const MatchingTask task = MakeHospitalTask(options);
  std::cout << "Two hospitals, " << task.log1.num_traces()
            << " episodes each, " << task.log1.num_events()
            << " pathway steps per coding system.\n"
            << "Curated patterns:\n";
  for (const Pattern& p : task.complex_patterns) {
    std::cout << "  " << p.ToString(&task.log1.dictionary()) << "\n";
  }

  // 1. Match.
  const DependencyGraph g1 = DependencyGraph::Build(task.log1);
  const std::vector<Pattern> patterns =
      BuildPatternSet(g1, task.complex_patterns);
  MatchingContext context(task.log1, task.log2, patterns);
  Result<MatchResult> matched = AStarMatcher().Match(context);
  if (!matched.ok()) {
    std::cerr << "matching failed: " << matched.status() << "\n";
    return 1;
  }
  const MatchQuality quality =
      EvaluateMapping(matched->mapping, task.ground_truth);
  std::cout << "\nmatched in " << matched->elapsed_ms << " ms, F-measure "
            << quality.f_measure << " against the known correspondence\n";

  // 2. Audit: the analyst looks at the weakest evidence first.
  std::cout << "\n";
  PrintMatchReport(ExplainMapping(context, matched->mapping), std::cout,
                   /*max_rows=*/6);

  // 3. Probe for split steps (none are expected in this workload; the
  //    extension should report zero gainful merges).
  Result<GroupMapping> groups = ExtendToOneToN(
      task.log1, task.log2, patterns, matched->mapping);
  if (groups.ok()) {
    std::cout << "\n1-to-n probe: " << groups->merges
              << " gainful merges (objective "
              << groups->base_objective << " -> " << groups->objective
              << ")\n";
  }

  // 4. Export the mapping for downstream integration.
  std::ostringstream exported;
  if (WriteMapping(matched->mapping, task.log1.dictionary(),
                   task.log2.dictionary(), exported)
          .ok()) {
    std::cout << "\nexported mapping:\n" << exported.str();
  }
  return 0;
}
