// Quickstart for the hematch library: match two tiny heterogeneous event
// logs, in the spirit of the paper's running example (Fig. 1) — a source
// log with events A..F and a target log with opaque numeric names, where
// only a composite pattern disambiguates the mapping.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "core/astar_matcher.h"
#include "core/pattern_set.h"
#include "eval/runner.h"
#include "graph/dependency_graph.h"
#include "log/event_log.h"
#include "pattern/pattern_parser.h"

int main() {
  using namespace hematch;

  // --- 1. Build the two event logs. -------------------------------------
  // Traces are sequences of opaque event names; in production they would
  // come from ReadCsvLogFile / ReadTraceLogFile.
  EventLog log1;
  log1.AddTraceByNames({"A", "B", "C", "D", "E"});
  log1.AddTraceByNames({"A", "C", "B", "D", "E"});
  log1.AddTraceByNames({"A", "B", "C", "D", "F"});
  log1.AddTraceByNames({"A", "C", "B", "D", "F"});
  log1.AddTraceByNames({"A", "B", "C", "D", "E"});

  EventLog log2;  // The same process, logged by another system.
  log2.AddTraceByNames({"3", "4", "5", "6", "7"});
  log2.AddTraceByNames({"3", "5", "4", "6", "7"});
  log2.AddTraceByNames({"3", "4", "5", "6", "8"});
  log2.AddTraceByNames({"3", "5", "4", "6", "8"});
  log2.AddTraceByNames({"3", "4", "5", "6", "7"});

  // --- 2. Declare a composite pattern over log1. ------------------------
  // "B and C happen right after A, in either order, then D" — Example 4.
  Result<Pattern> pattern =
      ParsePattern("SEQ(A, AND(B, C), D)", log1.dictionary());
  if (!pattern.ok()) {
    std::cerr << "pattern error: " << pattern.status() << "\n";
    return 1;
  }

  // --- 3. Assemble the matching instance. --------------------------------
  // The framework treats dependency-graph vertices and edges as special
  // patterns and adds the composite ones on top.
  const DependencyGraph g1 = DependencyGraph::Build(log1);
  MatchingContext context(log1, log2,
                          BuildPatternSet(g1, {pattern.value()}));

  // --- 4. Run the exact matcher (A* with the tight bound). ---------------
  AStarMatcher matcher;  // Defaults: tight bound, sound existence pruning.
  Result<MatchResult> outcome = matcher.Match(context);
  if (!outcome.ok()) {
    std::cerr << "matching failed: " << outcome.status() << "\n";
    return 1;
  }

  const MatchResult& result = outcome.value();
  std::cout << "optimal mapping : "
            << result.mapping.ToString(&log1.dictionary(),
                                       &log2.dictionary())
            << "\n";
  std::cout << "pattern normal distance : " << result.objective << "\n";
  std::cout << "search-tree nodes visited : " << result.nodes_visited
            << ", mappings processed : " << result.mappings_processed
            << "\n";
  return 0;
}
