// Pattern-discovery pipeline: the paper assumes interesting patterns are
// "available in business process analyzing systems" or "discovered from
// data". This example runs the full pipeline with *no* hand-curated
// patterns: mine discriminative composite patterns from the source log,
// feed them to the matcher, and compare against matching with the
// curated patterns and with no complex patterns at all (= Vertex+Edge).
//
//   ./build/examples/pattern_mining_pipeline

#include <iostream>

#include "core/astar_matcher.h"
#include "core/pattern_set.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "eval/table.h"
#include "gen/bus_process.h"
#include "gen/pattern_miner.h"
#include "graph/dependency_graph.h"

int main() {
  using namespace hematch;

  BusProcessOptions options;
  options.num_traces = 2000;
  const MatchingTask task = MakeBusManufacturerTask(options);
  const DependencyGraph g1 = DependencyGraph::Build(task.log1);

  // --- Mine composite patterns from log1. --------------------------------
  PatternMinerOptions miner_options;
  miner_options.min_support = 0.25;
  miner_options.max_events = 4;
  miner_options.max_patterns = 6;
  const std::vector<Pattern> mined =
      MineDiscriminativePatterns(task.log1, miner_options);
  std::cout << "mined " << mined.size() << " composite patterns:\n";
  for (const Pattern& p : mined) {
    std::cout << "  " << p.ToString(&task.log1.dictionary()) << "\n";
  }

  // --- Match under three pattern sources. ---------------------------------
  struct Variant {
    const char* name;
    std::vector<Pattern> complex;
  };
  const Variant variants[] = {
      {"no complex patterns (Vertex+Edge)", {}},
      {"curated patterns (paper setup)", task.complex_patterns},
      {"mined patterns (this pipeline)", mined},
  };

  TextTable table({"pattern source", "# complex", "F-measure", "time(ms)"});
  const AStarMatcher matcher;
  for (const Variant& variant : variants) {
    MatchingContext context(task.log1, task.log2,
                            BuildPatternSet(g1, variant.complex));
    const RunRecord record =
        RunMatcher(matcher, context, &task.ground_truth);
    table.AddRow({variant.name, std::to_string(variant.complex.size()),
                  record.completed ? TextTable::Num(record.f_measure) : "-",
                  record.completed ? TextTable::Num(record.elapsed_ms, 1)
                                   : record.failure});
  }
  table.Print(std::cout);
  std::cout << "\nMined patterns stand in for curated ones when no domain\n"
               "expert is available — the matcher only needs SEQ/AND trees\n"
               "with discriminative frequencies.\n";
  return 0;
}
