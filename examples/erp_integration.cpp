// ERP log integration scenario: two departments of a manufacturer run the
// "same" order-processing workflow in separate systems with independent,
// opaque event encodings. This example generates both logs (simulating
// the paper's real dataset), runs every matcher in the library on the
// instance, and compares their mappings against the ground truth.
//
//   ./build/examples/erp_integration

#include <iostream>

#include "baselines/entropy_matcher.h"
#include "baselines/iterative_matcher.h"
#include "baselines/vertex_edge_matcher.h"
#include "baselines/vertex_matcher.h"
#include "core/astar_matcher.h"
#include "core/heuristic_advanced_matcher.h"
#include "core/heuristic_simple_matcher.h"
#include "eval/runner.h"
#include "eval/table.h"
#include "gen/bus_process.h"

int main() {
  using namespace hematch;

  // Simulate the two departments' event logs (3,000 traces, 11 events
  // each, ground truth known by construction).
  BusProcessOptions options;
  const MatchingTask task = MakeBusManufacturerTask(options);
  std::cout << "Task: " << task.name << "\n"
            << "  L1: " << task.log1.num_traces() << " traces over "
            << task.log1.num_events() << " events\n"
            << "  L2: " << task.log2.num_traces() << " traces over "
            << task.log2.num_events() << " events\n"
            << "  complex patterns: " << task.complex_patterns.size() << "\n";
  for (const Pattern& p : task.complex_patterns) {
    std::cout << "    " << p.ToString(&task.log1.dictionary()) << "\n";
  }
  std::cout << "  ground truth: "
            << task.ground_truth.ToString(&task.log1.dictionary(),
                                          &task.log2.dictionary())
            << "\n\n";

  const AStarMatcher pattern_tight;      // Exact, tight bound.
  const HeuristicSimpleMatcher simple;   // Greedy expansion.
  const HeuristicAdvancedMatcher advanced;  // Algorithms 3 & 4.
  const VertexMatcher vertex;
  const VertexEdgeMatcher vertex_edge;
  const IterativeMatcher iterative;
  const EntropyMatcher entropy;
  const Matcher* matchers[] = {&pattern_tight, &simple, &advanced,
                               &vertex,        &vertex_edge, &iterative,
                               &entropy};

  TextTable table({"method", "F-measure", "precision", "recall",
                   "time(ms)", "mapping"});
  for (const Matcher* matcher : matchers) {
    const RunRecord record = RunMatcherOnTask(*matcher, task);
    if (!record.completed) {
      table.AddRow({record.method, "-", "-", "-", "-", record.failure});
      continue;
    }
    table.AddRow({record.method, TextTable::Num(record.f_measure),
                  TextTable::Num(record.precision),
                  TextTable::Num(record.recall),
                  TextTable::Num(record.elapsed_ms, 1),
                  record.mapping.ToString(&task.log1.dictionary(),
                                          &task.log2.dictionary())});
  }
  table.Print(std::cout);
  return 0;
}
