// Scale-up scenario: matching logs of a process built from repeated,
// near-identical structural units (the paper's Fig. 11 situation) —
// where exhaustive matching stops being an option and the heuristics
// earn their keep. This example sweeps the event-set size and shows the
// exact matcher hitting its search budget while the heuristics keep
// returning mappings.
//
//   ./build/examples/synthetic_scaleup [max_units] [traces]

#include <cstdlib>
#include <iostream>

#include "baselines/vertex_matcher.h"
#include "core/astar_matcher.h"
#include "core/heuristic_advanced_matcher.h"
#include "core/heuristic_simple_matcher.h"
#include "eval/runner.h"
#include "eval/table.h"
#include "gen/synthetic_process.h"

int main(int argc, char** argv) {
  using namespace hematch;
  const std::size_t max_units =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;
  const std::size_t traces =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4000;

  // A small budget makes the exact matcher give up quickly once the
  // factorial search space outgrows it — the behaviour the paper reports
  // as "cannot return results over 20 events".
  AStarOptions exact_options;
  exact_options.max_expansions = 200'000;
  const AStarMatcher exact(exact_options);
  const HeuristicSimpleMatcher heuristic_simple;
  const HeuristicAdvancedMatcher heuristic_advanced;
  const VertexMatcher vertex;
  const Matcher* matchers[] = {&exact, &heuristic_simple,
                               &heuristic_advanced, &vertex};

  std::cout << "Repeated-structure scale-up (" << traces
            << " traces per log; exact budget "
            << exact_options.max_expansions << " expansions)\n\n";
  TextTable table({"# events", "method", "F-measure", "time(ms)",
                   "# mappings processed"});
  for (std::size_t units = 1; units <= max_units; ++units) {
    SyntheticProcessOptions options;
    options.num_units = units;
    options.num_traces = traces;
    const MatchingTask task = MakeSyntheticTask(options);
    for (const Matcher* matcher : matchers) {
      const RunRecord record = RunMatcherOnTask(*matcher, task);
      if (!record.completed) {
        table.AddRow({std::to_string(10 * units), matcher->name(),
                      "(budget exhausted)", "-", "-"});
        continue;
      }
      table.AddRow({std::to_string(10 * units), matcher->name(),
                    TextTable::Num(record.f_measure),
                    TextTable::Num(record.elapsed_ms, 1),
                    std::to_string(record.mappings_processed)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nTakeaway: beyond a couple of repeated units the exact\n"
               "search exhausts any practical budget; Heuristic-Advanced\n"
               "keeps recovering most of the mapping at a tiny fraction of\n"
               "the processed-mapping count.\n";
  return 0;
}
