// Online monitoring scenario: the source system's schema is known, the
// target system streams traces in. The incremental dependency graph
// ingests each arriving trace in O(length); every K traces we snapshot
// it, rebuild the (cheap, schema-sized) matching instance, and watch the
// proposed mapping converge to the ground truth as evidence accumulates
// — the complex-event-processing setting the paper's introduction
// motivates.
//
//   ./build/examples/online_monitoring

#include <iostream>

#include "core/heuristic_advanced_matcher.h"
#include "core/pattern_set.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "gen/bus_process.h"
#include "graph/incremental_dependency_graph.h"
#include "log/projection.h"

int main() {
  using namespace hematch;

  BusProcessOptions options;
  options.num_traces = 2000;
  const MatchingTask task = MakeBusManufacturerTask(options);

  // The "stream": log2's traces arrive one at a time.
  IncrementalDependencyGraph stream;
  stream.EnsureEvents(task.log2.num_events());

  const HeuristicAdvancedMatcher matcher;
  TextTable table({"traces seen", "F-measure", "match time (ms)"});

  std::size_t ingested = 0;
  for (std::size_t checkpoint : {25u, 50u, 100u, 250u, 500u, 1000u, 2000u}) {
    while (ingested < checkpoint && ingested < task.log2.num_traces()) {
      stream.AddTrace(task.log2.traces()[ingested]);
      ++ingested;
    }
    // Snapshot-driven rematch. (The matchers consume an EventLog-backed
    // context; at schema scale rebuilding one from the streamed prefix
    // is cheap, and the incremental graph gives the monitoring layer
    // O(1) frequency reads between rematches.)
    const EventLog window = SelectFirstTraces(task.log2, ingested);
    const DependencyGraph g1 = DependencyGraph::Build(task.log1);
    MatchingContext context(task.log1, window,
                            BuildPatternSet(g1, task.complex_patterns));
    Result<MatchResult> result = matcher.Match(context);
    if (!result.ok()) {
      std::cerr << "matching failed: " << result.status() << "\n";
      return 1;
    }
    // Sanity: the incremental graph agrees with the batch snapshot.
    const DependencyGraph snapshot = stream.Snapshot();
    for (EventId v = 0; v < window.num_events(); ++v) {
      if (std::abs(snapshot.VertexFrequency(v) -
                   context.graph2().VertexFrequency(v)) > 1e-12) {
        std::cerr << "incremental/batch mismatch at event " << v << "\n";
        return 1;
      }
    }
    const MatchQuality quality =
        EvaluateMapping(result->mapping, task.ground_truth);
    table.AddRow({std::to_string(ingested),
                  TextTable::Num(quality.f_measure),
                  TextTable::Num(result->elapsed_ms, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nThe mapping stabilizes once the streamed frequencies\n"
               "separate the confusable events; before that, the matcher\n"
               "honestly reflects the ambiguity in the data.\n";
  return 0;
}
